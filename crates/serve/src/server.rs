//! The serving loop: a TCP front on the query engine.
//!
//! Architecture (no async runtime — blocking IO and a worker pool, which
//! the vendored dependency set supports and a top-k workload saturates):
//!
//! ```text
//! acceptor thread ──► connection thread (per client)
//!                        │  read frame → decode → validate
//!                        │  try_send ──► bounded admission queue ──► worker pool
//!                        │     │ full                                   │
//!                        │     ▼                                        ▼
//!                        │  Overloaded reply               MicroBatcher::submit
//!                        ◄── reply channel ◄──────────────── engine.query_batch
//! ```
//!
//! * **Admission control** — the queue between connections and workers is
//!   a bounded `sync_channel`. `try_send` never blocks: past capacity the
//!   request is *shed* with an explicit [`Response::Overloaded`] reply
//!   instead of queuing unboundedly or hanging the client. Depth and shed
//!   counts are live in the `Stats` reply.
//! * **Micro-batching** — workers submit their queries through the
//!   engine's [`MicroBatcher`], so requests arriving concurrently on many
//!   connections coalesce into one batched storage scan (leader/follower:
//!   whichever worker gets there first executes for all of them).
//! * **Stats bypass admission** — a health probe must answer *especially*
//!   when the queue is full, so `Stats` requests are served inline on the
//!   connection thread from atomic counters, never queued.
//!
//! Results are bit-identical to in-process [`QueryEngine`] calls — the
//! wire moves exact `f32` bit patterns and the server adds no reordering
//! (one outstanding request per connection, replies routed per request).

use crate::wire::MAX_FRAME_LEN;
use crate::wire::{
    decode_request, encode_response, read_frame, write_frame, Request, Response, StatsReply,
};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use tabbin_index::{MicroBatcher, QueryEngine, ShardedStore};

/// Most hits one `Hits` reply can carry and still fit [`MAX_FRAME_LEN`]
/// (opcode + count header, 12 bytes per hit). Queries asking for more are
/// answered with an `Error` up front instead of building a frame the
/// peer's decoder would reject.
pub const MAX_REPLY_HITS: usize = (MAX_FRAME_LEN as usize - 5) / 12;

/// Construction-time options for a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Admission queue capacity; requests past it are shed with
    /// [`Response::Overloaded`].
    pub queue_capacity: usize,
    /// Most concurrent connections; further accepts are answered with one
    /// `Overloaded` frame and closed, so a connection flood cannot spawn
    /// unbounded handler threads.
    pub max_connections: usize,
}

impl Default for ServeConfig {
    /// Four workers over a 64-deep admission queue, 256 connections.
    fn default() -> Self {
        Self { workers: 4, queue_capacity: 64, max_connections: 256 }
    }
}

/// One admitted query riding the queue to a worker.
struct QueryJob {
    vector: Vec<f32>,
    k: usize,
    reply: mpsc::Sender<Response>,
}

/// State shared by the acceptor, connection threads, and workers.
struct Shared {
    batcher: MicroBatcher<ShardedStore>,
    cfg: ServeConfig,
    admit: SyncSender<QueryJob>,
    /// Jobs admitted but not yet picked up by a worker.
    depth: AtomicUsize,
    /// Live connection handler threads.
    connections: AtomicUsize,
    shed: AtomicU64,
    served: AtomicU64,
    shutdown: AtomicBool,
}

impl Shared {
    fn engine(&self) -> &Arc<QueryEngine<ShardedStore>> {
        self.batcher.engine()
    }

    fn stats(&self) -> StatsReply {
        let engine = self.engine();
        let shards = engine.store().stats();
        StatsReply {
            shard_depths: shards.depths(),
            shards,
            engine: engine.stats(),
            batcher: self.batcher.stats(),
            queue_depth: self.depth.load(Ordering::Relaxed),
            queue_capacity: self.cfg.queue_capacity,
            shed: self.shed.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
        }
    }
}

/// A running server: acceptor + connection threads + worker pool over one
/// engine. Dropping the handle leaks the threads; call
/// [`shutdown`](Server::shutdown) for an orderly stop.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral loopback port) and starts
    /// serving `engine` with `cfg`'s worker pool and admission bounds.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        engine: Arc<QueryEngine<ShardedStore>>,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        assert!(cfg.workers > 0, "server needs at least one worker");
        assert!(cfg.queue_capacity > 0, "admission queue needs capacity");
        assert!(cfg.max_connections > 0, "server needs at least one connection slot");
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let (admit, jobs) = mpsc::sync_channel(cfg.queue_capacity);
        let shared = Arc::new(Shared {
            batcher: MicroBatcher::new(engine),
            cfg,
            admit,
            depth: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });

        let jobs = Arc::new(Mutex::new(jobs));
        let workers = (0..cfg.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let jobs = Arc::clone(&jobs);
                std::thread::spawn(move || worker_loop(&shared, &jobs))
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };

        Ok(Server { addr: local, shared, acceptor: Some(acceptor), workers })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's health counters, as a `Stats` request would see them.
    pub fn stats(&self) -> StatsReply {
        self.shared.stats()
    }

    /// Stops accepting, drains the workers, and joins the service threads.
    /// Open connections see EOF on their next read.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Connection admission mirrors request admission: past the cap,
        // shed with one Overloaded frame and close — never spawn
        // unboundedly. The short write timeout keeps a peer that refuses
        // to read from pinning the acceptor.
        if shared.connections.load(Ordering::SeqCst) >= shared.cfg.max_connections {
            shared.shed.fetch_add(1, Ordering::Relaxed);
            stream.set_write_timeout(Some(Duration::from_millis(100))).ok();
            let mut w = BufWriter::new(stream);
            let _ = send(&mut w, &Response::Overloaded);
            continue;
        }
        shared.connections.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            // A broken connection is the client's problem, not the
            // server's; the handler just ends.
            let _ = connection_loop(stream, &shared);
            shared.connections.fetch_sub(1, Ordering::SeqCst);
        });
    }
}

/// One request/response exchange at a time per connection, until EOF.
fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(p) => p,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => {
                // Malformed framing: tell the peer, then drop them — the
                // stream offset can no longer be trusted.
                send(&mut writer, &Response::Error(e.to_string()))?;
                return Ok(());
            }
        };
        let resp = match decode_request(&payload) {
            Err(e) => Response::Error(e.to_string()),
            Ok(Request::Stats) => Response::Stats(Box::new(shared.stats())),
            Ok(Request::Query { k, vector }) => handle_query(shared, vector, k as usize),
        };
        send(&mut writer, &resp)?;
    }
}

/// Admits one query (or sheds it) and waits for the worker's reply.
fn handle_query(shared: &Arc<Shared>, vector: Vec<f32>, k: usize) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        // The workers are draining away; queuing now could wait forever.
        return Response::Error("server is shutting down".into());
    }
    let dim = shared.engine().dim();
    if vector.len() != dim {
        return Response::Error(format!("query of {} components, store is {dim}", vector.len()));
    }
    if k > MAX_REPLY_HITS {
        return Response::Error(format!(
            "k={k} exceeds the {MAX_REPLY_HITS}-hit reply bound (frame limit {MAX_FRAME_LEN}B)"
        ));
    }
    let (tx, rx) = mpsc::channel();
    // Count the admission *before* the send: a worker can pop the job and
    // decrement between the send and any later increment.
    shared.depth.fetch_add(1, Ordering::Relaxed);
    match shared.admit.try_send(QueryJob { vector, k, reply: tx }) {
        Ok(()) => rx.recv().unwrap_or_else(|_| Response::Error("worker dropped reply".into())),
        Err(TrySendError::Full(_)) => {
            shared.depth.fetch_sub(1, Ordering::Relaxed);
            shared.shed.fetch_add(1, Ordering::Relaxed);
            Response::Overloaded
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.depth.fetch_sub(1, Ordering::Relaxed);
            Response::Error("server is shutting down".into())
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, jobs: &Mutex<Receiver<QueryJob>>) {
    loop {
        // Hold the receiver lock only for the dequeue, and poll with a
        // timeout so shutdown is seen even while idle.
        let job = {
            let rx = jobs.lock().expect("job queue lock poisoned");
            rx.recv_timeout(Duration::from_millis(50))
        };
        match job {
            Ok(job) => {
                shared.depth.fetch_sub(1, Ordering::Relaxed);
                let hits = shared.batcher.submit(&job.vector, job.k);
                shared.served.fetch_add(1, Ordering::Relaxed);
                // The connection may have hung up mid-wait; fine.
                let _ = job.reply.send(Response::Hits(hits));
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Encodes and writes one response. A reply that would not fit a frame
/// (e.g. a many-shard `Stats` body — `Hits` are bounded by the `k` guard)
/// degrades to an in-band `Error` instead of emitting a frame the peer's
/// decoder must reject.
fn send<W: Write>(w: &mut W, resp: &Response) -> io::Result<()> {
    let payload = encode_response(resp);
    if payload.len() > MAX_FRAME_LEN as usize {
        let err = Response::Error(format!(
            "reply of {} bytes exceeds the {MAX_FRAME_LEN}-byte frame bound",
            payload.len()
        ));
        return write_frame(w, &encode_response(&err));
    }
    write_frame(w, &payload)
}
