//! Clients for the serving tier's tagged wire protocol: a one-outstanding
//! blocking [`Client`], a windowed [`PipelinedClient`], and the
//! [`ReplyDemux`] both share to match chunked, possibly out-of-order
//! replies back to their requests by tag.

use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, Request, Response, StatsReply,
    CONNECTION_TAG,
};
use std::collections::{HashMap, HashSet};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use tabbin_index::Hit;

/// What a `Query` request came back as — callers must handle shed load
/// explicitly, it is a normal serving outcome rather than an IO failure.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutcome {
    /// Ranked hits, best first — bit-identical to the in-process engine.
    Hits(Vec<Hit>),
    /// The admission queue was full; the request was shed, not run.
    Overloaded {
        /// The server's backoff hint, derived from its queue depth when
        /// the request was shed.
        retry_after_millis: u32,
    },
}

/// Reassembles the reply stream of a multiplexed connection: feed every
/// reply payload in arrival order; chunked `Hits` accumulate per tag
/// until their `last` chunk, other responses complete immediately.
/// Frames of different tags may interleave arbitrarily — per-tag results
/// are a function of each tag's own frames alone, which is what makes
/// out-of-order pipelined replies safe (pinned in `tests/prop_wire.rs`).
#[derive(Default)]
pub struct ReplyDemux {
    partial: HashMap<u64, Vec<Hit>>,
}

impl ReplyDemux {
    pub fn new() -> Self {
        Self::default()
    }

    /// Tags with buffered chunks still awaiting their `last` frame.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }

    /// Absorbs one reply payload. `Some((tag, response))` when a reply
    /// completed — a `Hits` response carries the full reassembled list.
    pub fn push(&mut self, payload: &[u8]) -> io::Result<Option<(u64, Response)>> {
        let (tag, resp) = decode_response(payload)?;
        match resp {
            Response::Hits { hits, last } => {
                let acc = self.partial.entry(tag).or_default();
                acc.extend(hits);
                if !last {
                    return Ok(None);
                }
                let full = self.partial.remove(&tag).expect("entry just touched");
                Ok(Some((tag, Response::Hits { hits: full, last: true })))
            }
            // A terminal non-hits reply supersedes any partial chunks.
            other => {
                self.partial.remove(&tag);
                Ok(Some((tag, other)))
            }
        }
    }
}

/// A blocking connection to a `tabbin-serve` server: one outstanding
/// request at a time, framed and tagged per [`crate::wire`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_tag: u64,
    demux: ReplyDemux,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            next_tag: 1,
            demux: ReplyDemux::new(),
        })
    }

    /// Top-`k` over the wire. Server-side `Error` replies surface as
    /// `InvalidInput` IO errors carrying the server's message.
    pub fn query(&mut self, vector: &[f32], k: usize) -> io::Result<QueryOutcome> {
        let req = Request::Query { k: k as u32, vector: vector.to_vec() };
        match self.exchange(&req)? {
            Response::Hits { hits, .. } => Ok(QueryOutcome::Hits(hits)),
            Response::Overloaded { retry_after_millis } => {
                Ok(QueryOutcome::Overloaded { retry_after_millis })
            }
            Response::Error(msg) => Err(io::Error::new(io::ErrorKind::InvalidInput, msg)),
            Response::Stats(_) => Err(protocol("stats reply to a query request")),
        }
    }

    /// The server's health counters.
    pub fn stats(&mut self) -> io::Result<StatsReply> {
        match self.exchange(&Request::Stats)? {
            Response::Stats(stats) => Ok(*stats),
            Response::Error(msg) => Err(io::Error::new(io::ErrorKind::InvalidInput, msg)),
            Response::Overloaded { .. } => Err(protocol("server refused the connection")),
            Response::Hits { .. } => Err(protocol("hits reply to a stats request")),
        }
    }

    fn exchange(&mut self, req: &Request) -> io::Result<Response> {
        let tag = self.next_tag;
        self.next_tag += 1;
        write_frame(&mut self.writer, &encode_request(tag, req))?;
        loop {
            let payload = read_frame(&mut self.reader)?;
            let Some((got, resp)) = self.demux.push(&payload)? else { continue };
            if got == tag {
                return Ok(resp);
            }
            if got == CONNECTION_TAG {
                // Connection-level messages answer no request: the
                // over-cap greeting surfaces as the outcome, a fatal
                // framing error as an IO error (the server is hanging up).
                return match resp {
                    Response::Overloaded { .. } => Ok(resp),
                    Response::Error(msg) => Err(io::Error::new(io::ErrorKind::InvalidData, msg)),
                    _ => Err(protocol("unexpected connection-level reply")),
                };
            }
            return Err(protocol("reply for a tag this client never sent"));
        }
    }
}

/// A pipelined connection: keeps up to `window` tagged requests in
/// flight and matches replies by tag, so one socket overlaps many
/// round-trips. Results come back via [`wait`](Self::wait) (any order)
/// or [`query_all`](Self::query_all) (submission order) — arrival order
/// on the wire is up to the server and does not matter.
pub struct PipelinedClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    window: usize,
    next_tag: u64,
    outstanding: HashSet<u64>,
    /// Completed outcomes not yet claimed by `wait`; errors keep the
    /// server's message.
    done: HashMap<u64, Result<QueryOutcome, String>>,
    demux: ReplyDemux,
}

impl PipelinedClient {
    /// Connects with a window of at most `window` outstanding requests.
    pub fn connect<A: ToSocketAddrs>(addr: A, window: usize) -> io::Result<PipelinedClient> {
        assert!(window > 0, "a zero window could never submit");
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(PipelinedClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            window,
            next_tag: 1,
            outstanding: HashSet::new(),
            done: HashMap::new(),
            demux: ReplyDemux::new(),
        })
    }

    /// The configured window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Requests submitted and not yet completed.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Submits one query and returns its tag without waiting for the
    /// reply. Blocks only while the window is full, receiving replies
    /// until a slot frees. Writes are buffered; they flush before any
    /// receive, so submission bursts batch into few syscalls.
    pub fn submit(&mut self, vector: &[f32], k: usize) -> io::Result<u64> {
        while self.outstanding.len() >= self.window {
            self.recv_one()?;
        }
        let tag = self.next_tag;
        self.next_tag += 1;
        let req = Request::Query { k: k as u32, vector: vector.to_vec() };
        let payload = encode_request(tag, &req);
        self.writer.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&payload)?;
        self.outstanding.insert(tag);
        Ok(tag)
    }

    /// Blocks until `tag`'s reply arrives (absorbing other tags' replies
    /// along the way) and returns its outcome. Server-side `Error`
    /// replies surface as `InvalidInput` IO errors.
    pub fn wait(&mut self, tag: u64) -> io::Result<QueryOutcome> {
        loop {
            if let Some(result) = self.done.remove(&tag) {
                return result.map_err(|msg| io::Error::new(io::ErrorKind::InvalidInput, msg));
            }
            if !self.outstanding.contains(&tag) {
                return Err(protocol("waiting on a tag this client never submitted"));
            }
            self.recv_one()?;
        }
    }

    /// Receives until nothing is outstanding; completed outcomes stay
    /// buffered for [`wait`](Self::wait).
    pub fn drain(&mut self) -> io::Result<()> {
        while !self.outstanding.is_empty() {
            self.recv_one()?;
        }
        Ok(())
    }

    /// Pipelines every query through the window and returns outcomes in
    /// submission order, regardless of the order replies arrived in.
    pub fn query_all(&mut self, queries: &[Vec<f32>], k: usize) -> io::Result<Vec<QueryOutcome>> {
        let tags: Vec<u64> =
            queries.iter().map(|q| self.submit(q, k)).collect::<io::Result<_>>()?;
        tags.into_iter().map(|t| self.wait(t)).collect()
    }

    /// Receives exactly one frame and files whatever it completes.
    fn recv_one(&mut self) -> io::Result<()> {
        // Everything submitted must be on the wire before blocking on a
        // reply, or client and server would deadlock waiting on each other.
        self.writer.flush()?;
        let payload = read_frame(&mut self.reader)?;
        let Some((tag, resp)) = self.demux.push(&payload)? else { return Ok(()) };
        if tag == CONNECTION_TAG {
            return match resp {
                Response::Overloaded { .. } => Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "server over connection capacity",
                )),
                Response::Error(msg) => Err(io::Error::new(io::ErrorKind::InvalidData, msg)),
                _ => Err(protocol("unexpected connection-level reply")),
            };
        }
        if !self.outstanding.remove(&tag) {
            return Err(protocol("reply for a tag this client never sent"));
        }
        let outcome = match resp {
            Response::Hits { hits, .. } => Ok(QueryOutcome::Hits(hits)),
            Response::Overloaded { retry_after_millis } => {
                Ok(QueryOutcome::Overloaded { retry_after_millis })
            }
            Response::Error(msg) => Err(msg),
            Response::Stats(_) => Err("stats reply to a query request".to_string()),
        };
        self.done.insert(tag, outcome);
        Ok(())
    }
}

fn protocol(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}
