//! A blocking client for the serving tier's wire protocol.

use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, Request, Response, StatsReply,
};
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use tabbin_index::Hit;

/// What a `Query` request came back as — callers must handle shed load
/// explicitly, it is a normal serving outcome rather than an IO failure.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutcome {
    /// Ranked hits, best first — bit-identical to the in-process engine.
    Hits(Vec<Hit>),
    /// The admission queue was full; retry later (or back off).
    Overloaded,
}

/// A blocking connection to a `tabbin-serve` server: one outstanding
/// request at a time, framed per [`crate::wire`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { reader: BufReader::new(stream.try_clone()?), writer: BufWriter::new(stream) })
    }

    /// Top-`k` over the wire. Server-side `Error` replies surface as
    /// `InvalidInput` IO errors carrying the server's message.
    pub fn query(&mut self, vector: &[f32], k: usize) -> io::Result<QueryOutcome> {
        let req = Request::Query { k: k as u32, vector: vector.to_vec() };
        match self.exchange(&req)? {
            Response::Hits(hits) => Ok(QueryOutcome::Hits(hits)),
            Response::Overloaded => Ok(QueryOutcome::Overloaded),
            Response::Error(msg) => Err(io::Error::new(io::ErrorKind::InvalidInput, msg)),
            Response::Stats(_) => Err(protocol("stats reply to a query request")),
        }
    }

    /// The server's health counters.
    pub fn stats(&mut self) -> io::Result<StatsReply> {
        match self.exchange(&Request::Stats)? {
            Response::Stats(stats) => Ok(*stats),
            Response::Error(msg) => Err(io::Error::new(io::ErrorKind::InvalidInput, msg)),
            _ => Err(protocol("non-stats reply to a stats request")),
        }
    }

    fn exchange(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &encode_request(req))?;
        decode_response(&read_frame(&mut self.reader)?)
    }
}

fn protocol(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}
