//! Clients for the serving tier's tagged wire protocol: a one-outstanding
//! blocking [`Client`], a windowed [`PipelinedClient`], and the
//! [`ReplyDemux`] both share to match chunked, possibly out-of-order
//! replies back to their requests by tag.

use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, Request, Response, StatsReply,
    CONNECTION_TAG,
};
use std::collections::{HashMap, HashSet};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use tabbin_index::Hit;

/// Capped exponential backoff for [`Client::query_with_retry`] /
/// [`PipelinedClient::query_with_retry`]: how many sheds to absorb and
/// how long to sleep between attempts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Sheds absorbed before the final `Overloaded` is returned to the
    /// caller (so `max_retries + 1` attempts in total).
    pub max_retries: u32,
    /// First-attempt backoff floor in milliseconds; doubles per retry.
    pub base_millis: u64,
    /// Backoff ceiling in milliseconds — the exponential and the server's
    /// hint are both capped here.
    pub max_millis: u64,
}

impl Default for RetryPolicy {
    /// Five retries, 2 ms doubling, capped at 1 s.
    fn default() -> Self {
        Self { max_retries: 5, base_millis: 2, max_millis: 1_000 }
    }
}

impl RetryPolicy {
    /// The delay before retry `attempt` (0-based): the larger of the
    /// server's `retry_after_millis` hint and the exponential
    /// `base << attempt`, capped at `max_millis`, then jittered by a
    /// deterministic ±25% keyed on `salt` — a fleet of clients shed at
    /// the same instant must not come back at the same instant.
    pub fn backoff_millis(&self, attempt: u32, hint_millis: u32, salt: u64) -> u64 {
        let exp = self.base_millis.saturating_mul(1u64 << attempt.min(20));
        let raw = exp.max(hint_millis as u64).min(self.max_millis.max(1));
        // splitmix64 finalizer over (salt, attempt) → factor in [0.75, 1.25).
        let mut z = salt ^ (u64::from(attempt) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let jitter = 0.75 + (z % 1000) as f64 / 1998.0;
        ((raw as f64) * jitter).round().max(0.0) as u64
    }
}

/// What a `Query` request came back as — callers must handle shed load
/// explicitly, it is a normal serving outcome rather than an IO failure.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutcome {
    /// Ranked hits, best first — bit-identical to the in-process engine.
    Hits(Vec<Hit>),
    /// The admission queue was full; the request was shed, not run.
    Overloaded {
        /// The server's backoff hint, derived from its queue depth when
        /// the request was shed.
        retry_after_millis: u32,
    },
}

/// Reassembles the reply stream of a multiplexed connection: feed every
/// reply payload in arrival order; chunked `Hits` accumulate per tag
/// until their `last` chunk, other responses complete immediately.
/// Frames of different tags may interleave arbitrarily — per-tag results
/// are a function of each tag's own frames alone, which is what makes
/// out-of-order pipelined replies safe (pinned in `tests/prop_wire.rs`).
#[derive(Default)]
pub struct ReplyDemux {
    partial: HashMap<u64, Vec<Hit>>,
}

impl ReplyDemux {
    pub fn new() -> Self {
        Self::default()
    }

    /// Tags with buffered chunks still awaiting their `last` frame.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }

    /// Absorbs one reply payload. `Some((tag, response))` when a reply
    /// completed — a `Hits` response carries the full reassembled list.
    pub fn push(&mut self, payload: &[u8]) -> io::Result<Option<(u64, Response)>> {
        let (tag, resp) = decode_response(payload)?;
        match resp {
            Response::Hits { hits, last } => {
                let acc = self.partial.entry(tag).or_default();
                acc.extend(hits);
                if !last {
                    return Ok(None);
                }
                let full = self.partial.remove(&tag).expect("entry just touched");
                Ok(Some((tag, Response::Hits { hits: full, last: true })))
            }
            // A terminal non-hits reply supersedes any partial chunks.
            other => {
                self.partial.remove(&tag);
                Ok(Some((tag, other)))
            }
        }
    }
}

/// A blocking connection to a `tabbin-serve` server: one outstanding
/// request at a time, framed and tagged per [`crate::wire`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_tag: u64,
    demux: ReplyDemux,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            next_tag: 1,
            demux: ReplyDemux::new(),
        })
    }

    /// Top-`k` over the wire. Server-side `Error` replies surface as
    /// `InvalidInput` IO errors carrying the server's message.
    pub fn query(&mut self, vector: &[f32], k: usize) -> io::Result<QueryOutcome> {
        let req = Request::Query { k: k as u32, vector: vector.to_vec() };
        match self.exchange(&req)? {
            Response::Hits { hits, .. } => Ok(QueryOutcome::Hits(hits)),
            Response::Overloaded { retry_after_millis } => {
                Ok(QueryOutcome::Overloaded { retry_after_millis })
            }
            Response::Error(msg) => Err(io::Error::new(io::ErrorKind::InvalidInput, msg)),
            Response::Stats(_) => Err(protocol("stats reply to a query request")),
        }
    }

    /// [`query`](Self::query) that absorbs `Overloaded` sheds: sleeps per
    /// `policy` (honoring the server's `retry_after_millis` hint) and
    /// retries, returning the first non-shed outcome — or the final
    /// `Overloaded` once `policy.max_retries` sheds have been absorbed,
    /// so callers still see persistent overload rather than blocking
    /// forever.
    pub fn query_with_retry(
        &mut self,
        vector: &[f32],
        k: usize,
        policy: RetryPolicy,
    ) -> io::Result<QueryOutcome> {
        let mut attempt = 0u32;
        loop {
            match self.query(vector, k)? {
                QueryOutcome::Overloaded { retry_after_millis } if attempt < policy.max_retries => {
                    let delay = policy.backoff_millis(attempt, retry_after_millis, self.next_tag);
                    std::thread::sleep(Duration::from_millis(delay));
                    attempt += 1;
                }
                outcome => return Ok(outcome),
            }
        }
    }

    /// The server's health counters.
    pub fn stats(&mut self) -> io::Result<StatsReply> {
        match self.exchange(&Request::Stats)? {
            Response::Stats(stats) => Ok(*stats),
            Response::Error(msg) => Err(io::Error::new(io::ErrorKind::InvalidInput, msg)),
            Response::Overloaded { .. } => Err(protocol("server refused the connection")),
            Response::Hits { .. } => Err(protocol("hits reply to a stats request")),
        }
    }

    fn exchange(&mut self, req: &Request) -> io::Result<Response> {
        let tag = self.next_tag;
        self.next_tag += 1;
        write_frame(&mut self.writer, &encode_request(tag, req))?;
        loop {
            let payload = read_frame(&mut self.reader)?;
            let Some((got, resp)) = self.demux.push(&payload)? else { continue };
            if got == tag {
                return Ok(resp);
            }
            if got == CONNECTION_TAG {
                // Connection-level messages answer no request: the
                // over-cap greeting surfaces as the outcome, a fatal
                // framing error as an IO error (the server is hanging up).
                return match resp {
                    Response::Overloaded { .. } => Ok(resp),
                    Response::Error(msg) => Err(io::Error::new(io::ErrorKind::InvalidData, msg)),
                    _ => Err(protocol("unexpected connection-level reply")),
                };
            }
            return Err(protocol("reply for a tag this client never sent"));
        }
    }
}

/// A pipelined connection: keeps up to `window` tagged requests in
/// flight and matches replies by tag, so one socket overlaps many
/// round-trips. Results come back via [`wait`](Self::wait) (any order)
/// or [`query_all`](Self::query_all) (submission order) — arrival order
/// on the wire is up to the server and does not matter.
pub struct PipelinedClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    window: usize,
    next_tag: u64,
    outstanding: HashSet<u64>,
    /// Completed outcomes not yet claimed by `wait`; errors keep the
    /// server's message.
    done: HashMap<u64, Result<QueryOutcome, String>>,
    demux: ReplyDemux,
}

impl PipelinedClient {
    /// Connects with a window of at most `window` outstanding requests.
    pub fn connect<A: ToSocketAddrs>(addr: A, window: usize) -> io::Result<PipelinedClient> {
        assert!(window > 0, "a zero window could never submit");
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(PipelinedClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            window,
            next_tag: 1,
            outstanding: HashSet::new(),
            done: HashMap::new(),
            demux: ReplyDemux::new(),
        })
    }

    /// The configured window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Requests submitted and not yet completed.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Submits one query and returns its tag without waiting for the
    /// reply. Blocks only while the window is full, receiving replies
    /// until a slot frees. Writes are buffered; they flush before any
    /// receive, so submission bursts batch into few syscalls.
    pub fn submit(&mut self, vector: &[f32], k: usize) -> io::Result<u64> {
        while self.outstanding.len() >= self.window {
            self.recv_one()?;
        }
        let tag = self.next_tag;
        self.next_tag += 1;
        let req = Request::Query { k: k as u32, vector: vector.to_vec() };
        let payload = encode_request(tag, &req);
        self.writer.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&payload)?;
        self.outstanding.insert(tag);
        Ok(tag)
    }

    /// Blocks until `tag`'s reply arrives (absorbing other tags' replies
    /// along the way) and returns its outcome. Server-side `Error`
    /// replies surface as `InvalidInput` IO errors.
    pub fn wait(&mut self, tag: u64) -> io::Result<QueryOutcome> {
        loop {
            if let Some(result) = self.done.remove(&tag) {
                return result.map_err(|msg| io::Error::new(io::ErrorKind::InvalidInput, msg));
            }
            if !self.outstanding.contains(&tag) {
                return Err(protocol("waiting on a tag this client never submitted"));
            }
            self.recv_one()?;
        }
    }

    /// Receives until nothing is outstanding; completed outcomes stay
    /// buffered for [`wait`](Self::wait).
    pub fn drain(&mut self) -> io::Result<()> {
        while !self.outstanding.is_empty() {
            self.recv_one()?;
        }
        Ok(())
    }

    /// Submit-and-wait with shed absorption: like
    /// [`Client::query_with_retry`] but through the pipelined window, so
    /// a retry loop can ride a connection that has other requests in
    /// flight. Each attempt is its own tagged request; replies for other
    /// tags arriving meanwhile are buffered for their own `wait`ers.
    pub fn query_with_retry(
        &mut self,
        vector: &[f32],
        k: usize,
        policy: RetryPolicy,
    ) -> io::Result<QueryOutcome> {
        let mut attempt = 0u32;
        loop {
            let tag = self.submit(vector, k)?;
            match self.wait(tag)? {
                QueryOutcome::Overloaded { retry_after_millis } if attempt < policy.max_retries => {
                    let delay = policy.backoff_millis(attempt, retry_after_millis, tag);
                    std::thread::sleep(Duration::from_millis(delay));
                    attempt += 1;
                }
                outcome => return Ok(outcome),
            }
        }
    }

    /// Pipelines every query through the window and returns outcomes in
    /// submission order, regardless of the order replies arrived in.
    pub fn query_all(&mut self, queries: &[Vec<f32>], k: usize) -> io::Result<Vec<QueryOutcome>> {
        let tags: Vec<u64> =
            queries.iter().map(|q| self.submit(q, k)).collect::<io::Result<_>>()?;
        tags.into_iter().map(|t| self.wait(t)).collect()
    }

    /// Receives exactly one frame and files whatever it completes.
    fn recv_one(&mut self) -> io::Result<()> {
        // Everything submitted must be on the wire before blocking on a
        // reply, or client and server would deadlock waiting on each other.
        self.writer.flush()?;
        let payload = read_frame(&mut self.reader)?;
        let Some((tag, resp)) = self.demux.push(&payload)? else { return Ok(()) };
        if tag == CONNECTION_TAG {
            return match resp {
                Response::Overloaded { .. } => Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "server over connection capacity",
                )),
                Response::Error(msg) => Err(io::Error::new(io::ErrorKind::InvalidData, msg)),
                _ => Err(protocol("unexpected connection-level reply")),
            };
        }
        if !self.outstanding.remove(&tag) {
            return Err(protocol("reply for a tag this client never sent"));
        }
        let outcome = match resp {
            Response::Hits { hits, .. } => Ok(QueryOutcome::Hits(hits)),
            Response::Overloaded { retry_after_millis } => {
                Ok(QueryOutcome::Overloaded { retry_after_millis })
            }
            Response::Error(msg) => Err(msg),
            Response::Stats(_) => Err("stats reply to a query request".to_string()),
        };
        self.done.insert(tag, outcome);
        Ok(())
    }
}

fn protocol(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_response, read_frame, write_frame};
    use std::net::{SocketAddr, TcpListener};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::thread::JoinHandle;

    /// A loopback server that sheds the first `sheds` query requests with
    /// `Overloaded { retry_after_millis: 1 }` and answers every later one
    /// with a single hit. Returns the bind address, the join handle, and
    /// the query-attempt counter.
    fn flaky_server(sheds: u32) -> (SocketAddr, JoinHandle<()>, Arc<AtomicU32>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let attempts = Arc::new(AtomicU32::new(0));
        let counter = Arc::clone(&attempts);
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut writer = BufWriter::new(stream);
            loop {
                let Ok(payload) = read_frame(&mut reader) else { return };
                let (tag, req) = crate::wire::decode_request(&payload).expect("decode");
                let resp = match req {
                    Request::Query { .. } => {
                        let n = counter.fetch_add(1, Ordering::SeqCst);
                        if n < sheds {
                            Response::Overloaded { retry_after_millis: 1 }
                        } else {
                            Response::Hits { hits: vec![Hit { id: 42, score: 1.0 }], last: true }
                        }
                    }
                    Request::Stats => Response::Error("no stats here".to_string()),
                };
                write_frame(&mut writer, &encode_response(tag, &resp)).expect("write");
                writer.flush().expect("flush");
            }
        });
        (addr, handle, attempts)
    }

    #[test]
    fn retry_absorbs_sheds_and_returns_the_eventual_hits() {
        let (addr, server, attempts) = flaky_server(3);
        let mut client = Client::connect(addr).expect("connect");
        let policy = RetryPolicy { max_retries: 5, base_millis: 1, max_millis: 5 };
        let outcome = client.query_with_retry(&[1.0, 0.0], 1, policy).expect("query");
        assert_eq!(outcome, QueryOutcome::Hits(vec![Hit { id: 42, score: 1.0 }]));
        assert_eq!(attempts.load(Ordering::SeqCst), 4, "3 sheds + 1 success");
        drop(client);
        server.join().expect("server thread");
    }

    #[test]
    fn exhausted_retries_surface_the_final_overload() {
        let (addr, server, attempts) = flaky_server(u32::MAX);
        let mut client = Client::connect(addr).expect("connect");
        let policy = RetryPolicy { max_retries: 2, base_millis: 1, max_millis: 2 };
        let outcome = client.query_with_retry(&[1.0, 0.0], 1, policy).expect("query");
        assert_eq!(outcome, QueryOutcome::Overloaded { retry_after_millis: 1 });
        assert_eq!(attempts.load(Ordering::SeqCst), 3, "1 attempt + 2 retries");
        drop(client);
        server.join().expect("server thread");
    }

    #[test]
    fn pipelined_retry_reaches_hits_through_the_window() {
        let (addr, server, attempts) = flaky_server(2);
        let mut client = PipelinedClient::connect(addr, 4).expect("connect");
        let policy = RetryPolicy { max_retries: 4, base_millis: 1, max_millis: 5 };
        let outcome = client.query_with_retry(&[0.0, 1.0], 1, policy).expect("query");
        assert_eq!(outcome, QueryOutcome::Hits(vec![Hit { id: 42, score: 1.0 }]));
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
        drop(client);
        server.join().expect("server thread");
    }

    #[test]
    fn backoff_honors_the_hint_the_cap_and_the_jitter_band() {
        let policy = RetryPolicy { max_retries: 3, base_millis: 2, max_millis: 100 };
        for salt in [1u64, 7, 12345] {
            // The server hint dominates a small exponential...
            let with_hint = policy.backoff_millis(0, 40, salt);
            assert!((30..=50).contains(&with_hint), "hint 40 ±25% broke: {with_hint}");
            // ...the cap dominates everything...
            let capped = policy.backoff_millis(20, 10_000, salt);
            assert!(capped <= 125, "cap 100 ±25% broke: {capped}");
            // ...and without a hint the exponential floor applies.
            let early = policy.backoff_millis(0, 0, salt);
            assert!((1..=3).contains(&early), "base 2 ±25% broke: {early}");
        }
        // Jitter is deterministic per salt but varies across salts.
        assert_eq!(policy.backoff_millis(1, 0, 9), policy.backoff_millis(1, 0, 9));
        let spread: std::collections::HashSet<u64> =
            (0..64).map(|s| policy.backoff_millis(0, 80, s)).collect();
        assert!(spread.len() > 8, "jitter produced almost no spread: {}", spread.len());
    }
}
