//! The readiness-driven event loop: a few I/O threads own every client
//! socket, nonblocking, behind one epoll [`Poller`] each.
//!
//! Each I/O thread runs [`run_io_loop`] over its own connection table.
//! The acceptor hands it new sockets through [`IoHandle::push_conn`];
//! workers hand it finished replies through [`IoHandle::push_completion`];
//! both nudge the poller's eventfd so a blocked `wait` wakes. All poller
//! registration calls happen on the owning I/O thread — cross-thread
//! traffic is only the two mailboxes plus `notify`.
//!
//! Per readiness pass the loop: (1) registers newly accepted sockets,
//! (2) queues completed replies and flushes opportunistically, (3) for
//! each readable connection pulls bytes through the
//! [`ConnState`] reassembler and feeds every completed frame payload to
//! the server's `on_payload` policy hook, (4) flushes writable
//! connections, and (5) recomputes each touched connection's interest
//! set: read interest is dropped while the outbound queue holds
//! `max_queued_bytes` or more (**backpressure** — a slow reader stops
//! producing new work instead of ballooning the queue) and write
//! interest exists only while queued bytes remain.
//!
//! Lifecycle: a framing violation or protocol violation queues a final
//! error frame and closes after flush ([`ConnState::close_after_flush`]).
//! A peer's EOF half-closes the connection — already-admitted requests
//! still get their replies, then the socket drops. Connection keys are
//! never reused within an I/O thread, so a completion for a connection
//! that died mid-query is discarded instead of landing on a successor.

use crate::conn::{ConnState, ReadOutcome};
use crate::wire::{encode_response, Response, CONNECTION_TAG};
use polling::{Event, Events, Poller};
use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How long `wait` may block before re-checking the shutdown flag — a
/// bound on shutdown latency, not a poll interval (mailbox pushes notify).
const WAIT_TICK: Duration = Duration::from_millis(200);

/// A finished query reply traveling from a worker back to the I/O thread
/// that owns the connection.
pub(crate) struct Completion {
    /// Connection key within the owning I/O thread.
    pub conn: usize,
    /// The request's tag, released on arrival.
    pub tag: u64,
    /// Fully encoded reply payloads (one or more frames), reply order.
    pub payloads: Vec<Vec<u8>>,
}

/// What the server's per-payload policy hook decided.
pub(crate) enum Action {
    /// Queue these reply payloads on the connection now.
    Reply(Vec<Vec<u8>>),
    /// The request was admitted; a [`Completion`] will arrive later.
    Pending,
    /// Protocol violation: queue these payloads, then close after flush.
    /// Remaining payloads of the same read batch are discarded.
    Fatal(Vec<Vec<u8>>),
}

/// One I/O thread's mailbox: the only surface other threads touch.
pub(crate) struct IoHandle {
    pub poller: Poller,
    inbox: Mutex<Vec<TcpStream>>,
    completions: Mutex<Vec<Completion>>,
}

impl IoHandle {
    pub fn new() -> io::Result<IoHandle> {
        Ok(IoHandle {
            poller: Poller::new()?,
            inbox: Mutex::new(Vec::new()),
            completions: Mutex::new(Vec::new()),
        })
    }

    /// Hands a freshly accepted socket to this I/O thread.
    pub fn push_conn(&self, stream: TcpStream) {
        self.inbox.lock().expect("reactor inbox poisoned").push(stream);
        let _ = self.poller.notify();
    }

    /// Hands a finished reply to this I/O thread.
    pub fn push_completion(&self, c: Completion) {
        let first = {
            let mut q = self.completions.lock().expect("reactor completions poisoned");
            q.push(c);
            q.len() == 1
        };
        // One wake per drain batch: if completions are already pending,
        // the notify that announced the first one hasn't been consumed
        // yet, and the loop drains the whole queue when it fires.
        if first {
            let _ = self.poller.notify();
        }
    }

    fn drain_conns(&self) -> Vec<TcpStream> {
        std::mem::take(&mut *self.inbox.lock().expect("reactor inbox poisoned"))
    }

    fn drain_completions(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock().expect("reactor completions poisoned"))
    }
}

/// One registered connection: the socket, its protocol state machine, and
/// the interest set currently installed in the poller.
struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// The peer sent EOF; serve what's in flight, then drop.
    half_closed: bool,
    interest: (bool, bool),
}

impl Conn {
    /// The interest this connection should have installed right now.
    fn desired_interest(&self, max_queued_bytes: usize) -> (bool, bool) {
        let read = !self.state.closing()
            && !self.half_closed
            && self.state.queued_bytes() < max_queued_bytes;
        (read, self.state.wants_write())
    }

    /// Whether the connection has nothing left to live for.
    fn finished(&self) -> bool {
        if self.state.wants_write() {
            return false;
        }
        self.state.closing() || (self.half_closed && self.state.in_flight() == 0)
    }
}

/// Runs one I/O thread until `shutdown`. `on_payload` is the server's
/// policy hook for each complete inbound frame payload; `on_closed` fires
/// once per connection that leaves the table (including at shutdown), so
/// the server's live-connection gauge stays exact.
pub(crate) fn run_io_loop<F, G>(
    handle: &Arc<IoHandle>,
    shutdown: &AtomicBool,
    max_queued_bytes: usize,
    mut on_payload: F,
    on_closed: G,
) where
    F: FnMut(usize, &mut ConnState, &[u8]) -> Action,
    G: Fn(),
{
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    // Monotonic, never reused: a late completion for a dead connection
    // can only miss, never cross-talk onto a successor.
    let mut next_key = 0usize;
    let mut events = Events::new();
    loop {
        events.clear();
        let _ = handle.poller.wait(&mut events, Some(WAIT_TICK));
        if shutdown.load(Ordering::SeqCst) {
            for (_, conn) in conns.drain() {
                let _ = handle.poller.delete(&conn.stream);
                on_closed();
            }
            return;
        }

        for stream in handle.drain_conns() {
            let key = next_key;
            next_key += 1;
            let ok = stream.set_nonblocking(true).is_ok()
                && handle.poller.add(&stream, Event::readable(key)).is_ok();
            if !ok {
                on_closed();
                continue;
            }
            stream.set_nodelay(true).ok();
            let conn = Conn {
                stream,
                state: ConnState::new(),
                half_closed: false,
                interest: (true, false),
            };
            conns.insert(key, conn);
        }

        for c in handle.drain_completions() {
            // The connection may have died while its query ran.
            let Some(conn) = conns.get_mut(&c.conn) else { continue };
            conn.state.finish_tag(c.tag);
            if !conn.state.closing() {
                for p in &c.payloads {
                    conn.state.enqueue(p);
                }
            }
            settle(handle, &mut conns, c.conn, max_queued_bytes, &on_closed);
        }

        let ready: Vec<Event> = events.iter().collect();
        for ev in ready {
            if ev.readable {
                service_read(
                    handle,
                    &mut conns,
                    ev.key,
                    max_queued_bytes,
                    &mut on_payload,
                    &on_closed,
                );
            }
            if ev.writable {
                settle(handle, &mut conns, ev.key, max_queued_bytes, &on_closed);
            }
        }
    }
}

/// Services one readable connection: pulls bytes, hands each completed
/// payload to the policy hook, applies the resulting actions, then
/// settles the connection's writes/interest/lifetime.
fn service_read<F, G>(
    handle: &Arc<IoHandle>,
    conns: &mut HashMap<usize, Conn>,
    key: usize,
    max_queued_bytes: usize,
    on_payload: &mut F,
    on_closed: &G,
) where
    F: FnMut(usize, &mut ConnState, &[u8]) -> Action,
    G: Fn(),
{
    let Some(conn) = conns.get_mut(&key) else { return };
    // A stale readable event on a paused or closing connection: the
    // interest change already said no — don't read past backpressure.
    if !conn.desired_interest(max_queued_bytes).0 && !conn.half_closed {
        settle(handle, conns, key, max_queued_bytes, on_closed);
        return;
    }
    let payloads = match conn.state.read_some(&mut conn.stream) {
        Ok(ReadOutcome::Progress(p)) => p,
        Ok(ReadOutcome::Eof(p)) => {
            conn.half_closed = true;
            p
        }
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            // Hostile framing: the stream position is unrecoverable. Tell
            // the peer on the connection tag, then close after flush.
            let err = Response::Error(e.to_string());
            conn.state.enqueue(&encode_response(CONNECTION_TAG, &err));
            conn.state.close_after_flush();
            settle(handle, conns, key, max_queued_bytes, on_closed);
            return;
        }
        Err(_) => {
            drop_conn(handle, conns, key, on_closed);
            return;
        }
    };
    for p in &payloads {
        // Re-borrow per payload: the policy hook may need shared state.
        let Some(conn) = conns.get_mut(&key) else { return };
        match on_payload(key, &mut conn.state, p) {
            Action::Reply(frames) => {
                for f in &frames {
                    conn.state.enqueue(f);
                }
            }
            Action::Pending => {}
            Action::Fatal(frames) => {
                for f in &frames {
                    conn.state.enqueue(f);
                }
                conn.state.close_after_flush();
                break;
            }
        }
    }
    settle(handle, conns, key, max_queued_bytes, on_closed);
}

/// Flushes what it can, re-installs the connection's desired interest,
/// and drops the connection once it is finished (or its socket broke).
fn settle<G: Fn()>(
    handle: &Arc<IoHandle>,
    conns: &mut HashMap<usize, Conn>,
    key: usize,
    max_queued_bytes: usize,
    on_closed: &G,
) {
    let Some(conn) = conns.get_mut(&key) else { return };
    if conn.state.wants_write() && conn.state.flush(&mut conn.stream).is_err() {
        drop_conn(handle, conns, key, on_closed);
        return;
    }
    if conn.finished() {
        drop_conn(handle, conns, key, on_closed);
        return;
    }
    let want = conn.desired_interest(max_queued_bytes);
    if want != conn.interest {
        let ev = Event { key, readable: want.0, writable: want.1 };
        if handle.poller.modify(&conn.stream, ev).is_err() {
            drop_conn(handle, conns, key, on_closed);
            return;
        }
        conn.interest = want;
    }
}

fn drop_conn<G: Fn()>(
    handle: &Arc<IoHandle>,
    conns: &mut HashMap<usize, Conn>,
    key: usize,
    on_closed: &G,
) {
    if let Some(conn) = conns.remove(&key) {
        let _ = handle.poller.delete(&conn.stream);
        on_closed();
    }
}
