//! The serving tier: table-search as a network service.
//!
//! `tabbin-index` ends at an in-process [`QueryEngine`]; this crate puts a
//! network front on it so the sharded retrieval tier serves sustained
//! traffic instead of in-process callers — the ROADMAP's query-server
//! milestone. Three layers:
//!
//! * [`wire`] — the length-prefixed binary protocol: flat little-endian
//!   query/hits frames, JSON-bodied stats, and allocation-safe decoding
//!   (hostile length prefixes are rejected before any buffer is sized).
//! * [`Server`] ([`server`]) — a `TcpListener` acceptor, per-connection
//!   decode threads, a **bounded admission queue** that sheds load with an
//!   explicit [`Response::Overloaded`] reply (it never blocks and never
//!   hangs the client), and a worker pool whose members submit through the
//!   engine's [`MicroBatcher`](tabbin_index::MicroBatcher) so concurrent
//!   connections coalesce into batched storage scans.
//! * [`Client`] ([`client`]) — a blocking connection that surfaces shed
//!   load as [`QueryOutcome::Overloaded`] and ships the server's
//!   [`StatsReply`] health snapshot.
//!
//! Wire results are **bit-identical** to in-process engine calls (pinned
//! end to end in `tests/loopback.rs`): frames carry exact `f32` bit
//! patterns and the server never reorders within a connection.

pub mod client;
pub mod server;
pub mod wire;

pub use client::{Client, QueryOutcome};
pub use server::{ServeConfig, Server, MAX_REPLY_HITS};
pub use wire::{Request, Response, StatsReply, MAX_FRAME_LEN};

// Re-exported so downstream callers can build an engine without also
// depending on tabbin-index directly.
pub use tabbin_index::{EngineConfig, QueryEngine, ShardedStore};
