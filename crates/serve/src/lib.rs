//! The serving tier: table-search as a network service.
//!
//! `tabbin-index` ends at an in-process [`QueryEngine`]; this crate puts a
//! network front on it so the sharded retrieval tier serves sustained
//! concurrent traffic instead of in-process callers — the ROADMAP's
//! query-server and async-serving milestones. Five layers:
//!
//! * [`wire`] — protocol v2: length-prefixed frames, each payload opening
//!   with a client-chosen **u64 tag** so many requests ride one
//!   connection and replies return out of order; large results stream as
//!   chunked `Hits` frames; decoding is allocation-safe against hostile
//!   length prefixes.
//! * [`conn`] — the per-connection nonblocking state machine: partial
//!   frame reassembly, a bounded write queue with partial-write resume,
//!   and in-flight tag tracking.
//! * [`reactor`] — the readiness-driven event loop (a vendored
//!   epoll-backed poller, no async runtime): a few I/O threads own every
//!   socket and apply **backpressure** by pausing reads on connections
//!   whose reply queues back up.
//! * [`Server`] ([`server`]) — the event-loop front over a worker pool: a
//!   **bounded admission queue** sheds load with an explicit
//!   [`Response::Overloaded`] reply carrying a retry-after hint, and
//!   workers submit through the engine's
//!   [`MicroBatcher`](tabbin_index::MicroBatcher) so concurrent requests
//!   — across connections or pipelined on one — coalesce into batched
//!   storage scans.
//! * [`Client`] / [`PipelinedClient`] ([`client`]) — a blocking
//!   one-outstanding connection, and a windowed pipelined one that keeps
//!   many tagged requests in flight and matches replies by tag via
//!   [`ReplyDemux`].
//!
//! Wire results are **bit-identical** to in-process engine calls (pinned
//! end to end in `tests/loopback.rs` and `tests/prop_wire.rs`): frames
//! carry exact `f32` bit patterns, and reply routing is by tag, never by
//! position, so out-of-order completion cannot mix up results.

pub mod client;
pub mod conn;
pub mod reactor;
pub mod server;
pub mod wire;

pub use client::{Client, PipelinedClient, QueryOutcome, ReplyDemux, RetryPolicy};
pub use server::{ServeConfig, Server};
pub use wire::{Request, Response, StatsReply, CONNECTION_TAG, MAX_CHUNK_HITS, MAX_FRAME_LEN};

// Re-exported so downstream callers can build an engine without also
// depending on tabbin-index directly.
pub use tabbin_index::{EngineConfig, QueryEngine, ShardedStore};
