//! Wire protocol v2: tagged, length-prefixed binary frames over a byte
//! stream, built for pipelining.
//!
//! Every message is one **frame**: a `u32` little-endian payload length,
//! then the payload. Every payload opens with a `u64` little-endian
//! **tag** and a `u8` opcode; the rest is the message body, fixed-layout
//! little-endian (except the `Stats` body, which is JSON — stats are
//! structured, low-rate, and evolve; queries are hot and flat).
//!
//! | frame          | opcode | body (after `tag: u64`, `opcode: u8`) |
//! |----------------|--------|------|
//! | `Query`        | `0x01` | `k: u32`, `n: u32`, `n × f32` query vector |
//! | `Stats`        | `0x02` | — |
//! | `Hits` chunk   | `0x81` | `flags: u8` (bit 0 = last chunk), `n: u32`, `n × (id: u64, score: f32)` |
//! | `StatsReply`   | `0x82` | JSON-encoded [`StatsReply`] |
//! | `Overloaded`   | `0x83` | `retry_after_millis: u32` |
//! | `Error`        | `0x84` | UTF-8 message |
//!
//! **Tags** are chosen by the client (any nonzero `u64`) and echoed on
//! every frame of the reply, so a connection may have many requests in
//! flight and the server may answer them **out of order** — the client
//! matches replies to requests by tag, never by position. Tag `0` is
//! reserved for connection-level server messages that answer no specific
//! request: the over-cap `Overloaded` greeting and fatal framing errors.
//!
//! **Chunking**: a `Hits` reply is a sequence of one or more chunk frames
//! sharing the request's tag; each carries up to [`MAX_CHUNK_HITS`] hits
//! and a `last` flag on the final chunk. Chunks of one reply arrive in
//! rank order, but frames of *different* tags may interleave freely
//! between them. Streaming in chunks removes v1's `MAX_REPLY_HITS`
//! ceiling — any `k` the engine can answer now fits on the wire.
//!
//! Decoding is **allocation-safe against hostile peers**: the length
//! prefix is checked against [`MAX_FRAME_LEN`] *before* any buffer is
//! sized from it, so an adversarial `0xffffffff` prefix is rejected with
//! `InvalidData` instead of a multi-gigabyte allocation. Body lengths are
//! cross-checked against their element counts the same way.

use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use tabbin_index::{EngineStats, Hit, MicroBatchStats, ShardedStats};

/// Hard ceiling on one frame's payload (1 MiB). A dim-4096 query is
/// ~16 KiB and a full hits chunk ~96 KiB; the bound leaves an order of
/// magnitude of headroom while keeping the worst hostile allocation
/// harmless.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Every payload opens with `tag: u64` + `opcode: u8`.
pub const PAYLOAD_HEADER_LEN: usize = 9;

/// Hits per `Hits` chunk frame. A full chunk's payload is
/// `9 + 1 + 4 + 12 × 8192 ≈ 96 KiB`, comfortably under
/// [`MAX_FRAME_LEN`]; large-`k` replies stream as multiple chunks.
pub const MAX_CHUNK_HITS: usize = 8192;

/// Reserved tag for connection-level server messages (over-cap
/// `Overloaded`, fatal framing errors). Client requests use tags ≥ 1.
pub const CONNECTION_TAG: u64 = 0;

const OP_QUERY: u8 = 0x01;
const OP_STATS: u8 = 0x02;
const OP_HITS: u8 = 0x81;
const OP_STATS_REPLY: u8 = 0x82;
const OP_OVERLOADED: u8 = 0x83;
const OP_ERROR: u8 = 0x84;

const HITS_FLAG_LAST: u8 = 0x01;

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Top-`k` over one query vector.
    Query {
        /// How many hits to return.
        k: u32,
        /// The query vector (dimension is validated server-side).
        vector: Vec<f32>,
    },
    /// Snapshot the server's health counters.
    Stats,
}

/// A server-to-client message. One `Query` is answered by a sequence of
/// [`Response::Hits`] chunks (the final one flagged `last`) or a single
/// terminal `Overloaded`/`Error`.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// One chunk of ranked hits for a `Query`, in rank order.
    Hits {
        /// The hits in this chunk.
        hits: Vec<Hit>,
        /// Whether this chunk completes the reply.
        last: bool,
    },
    /// The health snapshot for a `Stats` request.
    Stats(Box<StatsReply>),
    /// The request was shed, not queued; retry no sooner than the hint.
    Overloaded {
        /// Backoff hint derived from the admission queue's depth when the
        /// request was shed.
        retry_after_millis: u32,
    },
    /// The request was malformed or unserviceable (e.g. wrong dimension).
    Error(String),
}

/// The server's `Stats` payload: storage, engine, batcher, and admission
/// counters in one reply — the health endpoint the ROADMAP promised.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Per-shard storage stats (live/tombstones/segments/pending rows).
    pub shards: ShardedStats,
    /// Per-shard pending depth (tombstones + unsealed rows), shard order —
    /// the head-of-line-blocking signal across the fan-out.
    pub shard_depths: Vec<usize>,
    /// Query-engine cache and storage-call counters.
    pub engine: EngineStats,
    /// Micro-batcher coalescing counters.
    pub batcher: MicroBatchStats,
    /// Requests currently admitted and waiting for a worker.
    pub queue_depth: usize,
    /// Admission queue capacity (resolved; see `ServeConfig::queue_capacity`).
    pub queue_capacity: usize,
    /// Open client connections.
    pub connections: usize,
    /// Requests shed with `Overloaded` since the server started.
    pub shed: u64,
    /// Query requests served since the server started.
    pub served: u64,
    /// The store's router kind (`"hash"` or `"ivf"`).
    pub router: String,
    /// Max/mean live shard depth — 1.0 is perfectly balanced; the
    /// rebalance trigger watches this.
    pub imbalance: f64,
    /// Shards each query probes under the server's resolved plan (equals
    /// the shard count for full fan-out).
    pub nprobe: usize,
    /// Bytes of write-ahead log not yet folded into a snapshot — the
    /// replay debt a crash right now would incur. `0` when the store is
    /// not durable.
    pub wal_depth_bytes: u64,
    /// Highest WAL LSN known durable (covered by an fsync). `0` when the
    /// store is not durable.
    pub last_fsync_lsn: u64,
    /// WAL records replayed when the store was opened — nonzero exactly
    /// when this process recovered state a predecessor journaled.
    pub replay_records: u64,
}

/// Writes one frame (length prefix + payload). Refuses payloads past
/// [`MAX_FRAME_LEN`] — the peer's decoder would reject them anyway, and
/// erroring here keeps the stream's framing intact.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "outbound frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte bound",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. Rejects length prefixes of zero or beyond
/// [`MAX_FRAME_LEN`] **before allocating anything** sized by them.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty frame"));
    }
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte bound"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Incremental frame reassembly for nonblocking reads: feed whatever
/// bytes the socket produced — any split, down to one byte at a time —
/// and collect complete frame payloads as they materialize.
///
/// Framing violations (zero or oversized length prefixes) poison the
/// assembler: the stream position is unrecoverable once a length prefix
/// is wrong, so every later `push` fails too and the connection must be
/// torn down.
#[derive(Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    poisoned: bool,
}

impl FrameAssembler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffered bytes not yet assembled into a complete frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Absorbs `bytes` and returns every frame payload completed by them.
    pub fn push(&mut self, bytes: &[u8]) -> io::Result<Vec<Vec<u8>>> {
        if self.poisoned {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "framing already broken"));
        }
        self.buf.extend_from_slice(bytes);
        let mut out = Vec::new();
        let mut pos = 0;
        while self.buf.len() - pos >= 4 {
            let len =
                u32::from_le_bytes(self.buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            if len == 0 || len > MAX_FRAME_LEN as usize {
                self.poisoned = true;
                self.buf.clear();
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("frame of {len} bytes outside (0, {MAX_FRAME_LEN}]"),
                ));
            }
            if self.buf.len() - pos - 4 < len {
                break;
            }
            out.push(self.buf[pos + 4..pos + 4 + len].to_vec());
            pos += 4 + len;
        }
        self.buf.drain(..pos);
        Ok(out)
    }
}

/// Extracts the tag from a payload without decoding the rest — how the
/// server addresses an error reply for a body it cannot decode. `None`
/// when the payload is too short to even carry a tag.
pub fn payload_tag(payload: &[u8]) -> Option<u64> {
    if payload.len() < PAYLOAD_HEADER_LEN {
        return None;
    }
    Some(u64::from_le_bytes(payload[..8].try_into().expect("8 bytes")))
}

/// Encodes a request payload (no length prefix; [`write_frame`] adds it).
pub fn encode_request(tag: u64, req: &Request) -> Vec<u8> {
    match req {
        Request::Query { k, vector } => {
            let mut out = Vec::with_capacity(PAYLOAD_HEADER_LEN + 8 + 4 * vector.len());
            out.extend_from_slice(&tag.to_le_bytes());
            out.push(OP_QUERY);
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&(vector.len() as u32).to_le_bytes());
            for x in vector {
                out.extend_from_slice(&x.to_le_bytes());
            }
            out
        }
        Request::Stats => {
            let mut out = Vec::with_capacity(PAYLOAD_HEADER_LEN);
            out.extend_from_slice(&tag.to_le_bytes());
            out.push(OP_STATS);
            out
        }
    }
}

/// Decodes a request payload into its tag and message.
pub fn decode_request(payload: &[u8]) -> io::Result<(u64, Request)> {
    let mut cur = Cursor::new(payload);
    let tag = cur.u64()?;
    match cur.u8()? {
        OP_QUERY => {
            let k = cur.u32()?;
            let n = cur.u32()? as usize;
            // n came off the wire: cross-check against the bytes actually
            // present before sizing a buffer from it.
            if cur.remaining() != n * 4 {
                return Err(invalid(format!(
                    "query of {n} components with {} body bytes",
                    cur.remaining()
                )));
            }
            let vector = (0..n).map(|_| cur.f32()).collect::<io::Result<Vec<f32>>>()?;
            cur.done()?;
            Ok((tag, Request::Query { k, vector }))
        }
        OP_STATS => {
            cur.done()?;
            Ok((tag, Request::Stats))
        }
        op => Err(invalid(format!("unknown request opcode {op:#04x}"))),
    }
}

/// Encodes a response payload (no length prefix; [`write_frame`] adds it).
pub fn encode_response(tag: u64, resp: &Response) -> Vec<u8> {
    match resp {
        Response::Hits { hits, last } => {
            debug_assert!(hits.len() <= MAX_CHUNK_HITS, "chunk overflows the frame bound");
            let mut out = Vec::with_capacity(PAYLOAD_HEADER_LEN + 5 + 12 * hits.len());
            out.extend_from_slice(&tag.to_le_bytes());
            out.push(OP_HITS);
            out.push(if *last { HITS_FLAG_LAST } else { 0 });
            out.extend_from_slice(&(hits.len() as u32).to_le_bytes());
            for h in hits {
                out.extend_from_slice(&h.id.to_le_bytes());
                out.extend_from_slice(&h.score.to_le_bytes());
            }
            out
        }
        Response::Stats(stats) => {
            let json = serde_json::to_string(stats.as_ref()).expect("StatsReply serializes");
            let mut out = Vec::with_capacity(PAYLOAD_HEADER_LEN + json.len());
            out.extend_from_slice(&tag.to_le_bytes());
            out.push(OP_STATS_REPLY);
            out.extend_from_slice(json.as_bytes());
            out
        }
        Response::Overloaded { retry_after_millis } => {
            let mut out = Vec::with_capacity(PAYLOAD_HEADER_LEN + 4);
            out.extend_from_slice(&tag.to_le_bytes());
            out.push(OP_OVERLOADED);
            out.extend_from_slice(&retry_after_millis.to_le_bytes());
            out
        }
        Response::Error(msg) => {
            let mut out = Vec::with_capacity(PAYLOAD_HEADER_LEN + msg.len());
            out.extend_from_slice(&tag.to_le_bytes());
            out.push(OP_ERROR);
            out.extend_from_slice(msg.as_bytes());
            out
        }
    }
}

/// Encodes a complete ranked result as a sequence of chunked `Hits`
/// payloads — at least one frame (an empty `last` chunk for an empty
/// result), each within [`MAX_FRAME_LEN`].
pub fn encode_hits_payloads(tag: u64, hits: &[Hit]) -> Vec<Vec<u8>> {
    encode_hits_payloads_chunked(tag, hits, MAX_CHUNK_HITS)
}

/// [`encode_hits_payloads`] with an explicit chunk size — the interleaving
/// proptests use tiny chunks to exercise many-frame replies without
/// building [`MAX_CHUNK_HITS`]-sized results.
pub fn encode_hits_payloads_chunked(tag: u64, hits: &[Hit], chunk_hits: usize) -> Vec<Vec<u8>> {
    let chunk_hits = chunk_hits.clamp(1, MAX_CHUNK_HITS);
    if hits.is_empty() {
        return vec![encode_response(tag, &Response::Hits { hits: Vec::new(), last: true })];
    }
    let mut out = Vec::with_capacity(hits.len().div_ceil(chunk_hits));
    let mut chunks = hits.chunks(chunk_hits).peekable();
    while let Some(chunk) = chunks.next() {
        let last = chunks.peek().is_none();
        out.push(encode_response(tag, &Response::Hits { hits: chunk.to_vec(), last }));
    }
    out
}

/// Decodes a response payload into its tag and message.
pub fn decode_response(payload: &[u8]) -> io::Result<(u64, Response)> {
    let mut cur = Cursor::new(payload);
    let tag = cur.u64()?;
    match cur.u8()? {
        OP_HITS => {
            let flags = cur.u8()?;
            if flags & !HITS_FLAG_LAST != 0 {
                return Err(invalid(format!("unknown hits flags {flags:#04x}")));
            }
            let n = cur.u32()? as usize;
            if cur.remaining() != n * 12 {
                return Err(invalid(format!("{n} hits with {} body bytes", cur.remaining())));
            }
            let mut hits = Vec::with_capacity(n);
            for _ in 0..n {
                let id = cur.u64()?;
                let score = cur.f32()?;
                hits.push(Hit { id, score });
            }
            cur.done()?;
            Ok((tag, Response::Hits { hits, last: flags & HITS_FLAG_LAST != 0 }))
        }
        OP_STATS_REPLY => {
            let json = std::str::from_utf8(cur.rest())
                .map_err(|e| invalid(format!("stats reply is not UTF-8: {e}")))?;
            let stats: StatsReply = serde_json::from_str(json)
                .map_err(|e| invalid(format!("stats reply does not parse: {e}")))?;
            Ok((tag, Response::Stats(Box::new(stats))))
        }
        OP_OVERLOADED => {
            let retry_after_millis = cur.u32()?;
            cur.done()?;
            Ok((tag, Response::Overloaded { retry_after_millis }))
        }
        OP_ERROR => {
            let msg = std::str::from_utf8(cur.rest())
                .map_err(|e| invalid(format!("error reply is not UTF-8: {e}")))?
                .to_string();
            Ok((tag, Response::Error(msg)))
        }
        op => Err(invalid(format!("unknown response opcode {op:#04x}"))),
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// A bounds-checked little-endian reader over one payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(invalid(format!("truncated frame: wanted {n} more bytes")));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f32(&mut self) -> io::Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Asserts the payload was consumed exactly — trailing garbage is a
    /// framing bug on the peer's side and must not pass silently.
    fn done(&self) -> io::Result<()> {
        if self.remaining() != 0 {
            return Err(invalid(format!("{} trailing bytes after message", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrips_with_tag() {
        let req = Request::Query { k: 10, vector: vec![1.5, -2.25, 0.0, f32::MIN_POSITIVE] };
        assert_eq!(decode_request(&encode_request(42, &req)).unwrap(), (42, req));
        let empty = Request::Query { k: 0, vector: Vec::new() };
        assert_eq!(decode_request(&encode_request(u64::MAX, &empty)).unwrap(), (u64::MAX, empty));
        assert_eq!(
            decode_request(&encode_request(1, &Request::Stats)).unwrap(),
            (1, Request::Stats)
        );
    }

    #[test]
    fn responses_roundtrip_with_tag() {
        let hits = Response::Hits {
            hits: vec![Hit { id: 7, score: 0.99 }, Hit { id: u64::MAX, score: -1.0 }],
            last: true,
        };
        assert_eq!(decode_response(&encode_response(9, &hits)).unwrap(), (9, hits));
        let partial = Response::Hits { hits: vec![Hit { id: 3, score: 0.5 }], last: false };
        assert_eq!(decode_response(&encode_response(9, &partial)).unwrap(), (9, partial));
        let over = Response::Overloaded { retry_after_millis: 17 };
        assert_eq!(decode_response(&encode_response(0, &over)).unwrap(), (CONNECTION_TAG, over));
        let err = Response::Error("no such dimension".into());
        assert_eq!(decode_response(&encode_response(5, &err)).unwrap(), (5, err));
        let stats = Response::Stats(Box::new(StatsReply {
            shard_depths: vec![3, 1],
            queue_capacity: 64,
            connections: 2,
            shed: 2,
            served: 40,
            ..StatsReply::default()
        }));
        assert_eq!(decode_response(&encode_response(8, &stats)).unwrap(), (8, stats));
    }

    #[test]
    fn payload_tag_peeks_without_decoding() {
        let payload = encode_request(0xdead_beef, &Request::Stats);
        assert_eq!(payload_tag(&payload), Some(0xdead_beef));
        assert_eq!(payload_tag(&payload[..8]), None, "header-short payload has no tag");
    }

    #[test]
    fn nan_scores_survive_the_wire_bit_for_bit() {
        let hits = vec![Hit { id: 1, score: f32::NAN }, Hit { id: 2, score: f32::INFINITY }];
        let encoded = encode_response(3, &Response::Hits { hits: hits.clone(), last: true });
        let (_, decoded) = decode_response(&encoded).unwrap();
        let Response::Hits { hits: got, .. } = decoded else { panic!("wrong variant") };
        for (a, b) in hits.iter().zip(&got) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn hits_chunking_splits_and_flags_the_final_chunk() {
        let hits: Vec<Hit> =
            (0..2 * MAX_CHUNK_HITS + 5).map(|i| Hit { id: i as u64, score: -(i as f32) }).collect();
        let payloads = encode_hits_payloads(11, &hits);
        assert_eq!(payloads.len(), 3);
        let mut reassembled = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            assert!(p.len() <= MAX_FRAME_LEN as usize);
            let (tag, resp) = decode_response(p).unwrap();
            assert_eq!(tag, 11);
            let Response::Hits { hits: chunk, last } = resp else { panic!("wrong variant") };
            assert_eq!(last, i == 2, "only the final chunk carries the last flag");
            reassembled.extend(chunk);
        }
        assert_eq!(reassembled, hits, "chunking must preserve rank order exactly");

        // Empty result: still exactly one (terminal) frame.
        let empty = encode_hits_payloads(4, &[]);
        assert_eq!(empty.len(), 1);
        assert_eq!(
            decode_response(&empty[0]).unwrap(),
            (4, Response::Hits { hits: Vec::new(), last: true })
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        // A hostile 4 GiB length prefix: read_frame must error out after
        // the 4 prefix bytes without sizing a buffer from it.
        let mut stream: &[u8] = &0xffff_ffffu32.to_le_bytes();
        let err = read_frame(&mut stream).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds"), "unhelpful error: {err}");
        // Just past the bound is rejected too; at the bound it would read.
        let mut at_edge: &[u8] = &(MAX_FRAME_LEN + 1).to_le_bytes();
        assert_eq!(read_frame(&mut at_edge).unwrap_err().kind(), io::ErrorKind::InvalidData);
        let mut zero: &[u8] = &0u32.to_le_bytes();
        assert_eq!(read_frame(&mut zero).unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupt_bodies_are_rejected() {
        // Element count inconsistent with the body length.
        let mut req = encode_request(1, &Request::Query { k: 5, vector: vec![1.0, 2.0] });
        let n_off = PAYLOAD_HEADER_LEN + 4;
        req[n_off..n_off + 4].copy_from_slice(&100u32.to_le_bytes());
        assert!(decode_request(&req).is_err(), "inflated component count must not decode");
        // Unknown opcodes, truncation, and trailing garbage.
        assert!(decode_request(&[0; PAYLOAD_HEADER_LEN - 1]).is_err(), "tagless runt");
        let mut unknown = vec![0u8; PAYLOAD_HEADER_LEN];
        unknown[8] = 0x7f;
        assert!(decode_request(&unknown).is_err());
        let mut trailing = encode_request(2, &Request::Stats);
        trailing.push(0);
        assert!(decode_request(&trailing).is_err());
        let mut resp = encode_response(
            3,
            &Response::Hits { hits: vec![Hit { id: 1, score: 1.0 }], last: true },
        );
        let n_off = PAYLOAD_HEADER_LEN + 1;
        resp[n_off..n_off + 4].copy_from_slice(&2u32.to_le_bytes());
        assert!(decode_response(&resp).is_err(), "inflated hit count must not decode");
        // Unknown hits flags are reserved, not ignored.
        let mut flags = encode_response(3, &Response::Hits { hits: Vec::new(), last: true });
        flags[PAYLOAD_HEADER_LEN] = 0x82;
        assert!(decode_response(&flags).is_err());
    }

    #[test]
    fn frames_roundtrip_through_a_byte_stream() {
        let payloads: Vec<Vec<u8>> = vec![
            encode_request(1, &Request::Query { k: 3, vector: vec![0.5; 17] }),
            encode_request(2, &Request::Stats),
            encode_response(1, &Response::Overloaded { retry_after_millis: 3 }),
        ];
        let mut stream = Vec::new();
        for p in &payloads {
            write_frame(&mut stream, p).unwrap();
        }
        let mut r: &[u8] = &stream;
        for p in &payloads {
            assert_eq!(&read_frame(&mut r).unwrap(), p);
        }
        assert!(read_frame(&mut r).is_err(), "EOF must surface as an error");
    }

    #[test]
    fn assembler_reassembles_across_arbitrary_splits() {
        let payloads: Vec<Vec<u8>> = (0..5)
            .map(|i| encode_request(i + 1, &Request::Query { k: i as u32, vector: vec![0.25; 3] }))
            .collect();
        let mut stream = Vec::new();
        for p in &payloads {
            write_frame(&mut stream, p).unwrap();
        }
        // One byte at a time: the cruelest split.
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for b in &stream {
            got.extend(asm.push(std::slice::from_ref(b)).unwrap());
        }
        assert_eq!(got, payloads);
        assert_eq!(asm.pending_bytes(), 0);
        // And all at once.
        let mut asm = FrameAssembler::new();
        assert_eq!(asm.push(&stream).unwrap(), payloads);
    }

    #[test]
    fn assembler_poisons_on_hostile_length_prefixes() {
        let mut asm = FrameAssembler::new();
        let err = asm.push(&0xffff_ffffu32.to_le_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The stream position is gone: everything after fails too.
        assert!(asm.push(&encode_request(1, &Request::Stats)).is_err());

        let mut asm = FrameAssembler::new();
        assert!(asm.push(&0u32.to_le_bytes()).is_err(), "zero-length frame");
    }
}
