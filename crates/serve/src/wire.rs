//! The wire protocol: length-prefixed binary frames over a byte stream.
//!
//! Every message is one **frame**: a `u32` little-endian payload length,
//! then the payload. The first payload byte is an opcode; the rest is the
//! message body, fixed-layout little-endian (except the `Stats` body,
//! which is JSON — stats are structured, low-rate, and evolve; queries are
//! hot and flat).
//!
//! | frame          | opcode | body |
//! |----------------|--------|------|
//! | `Query`        | `0x01` | `k: u32`, `n: u32`, `n × f32` query vector |
//! | `Stats`        | `0x02` | — |
//! | `Hits`         | `0x81` | `n: u32`, `n × (id: u64, score: f32)` |
//! | `StatsReply`   | `0x82` | JSON-encoded [`StatsReply`] |
//! | `Overloaded`   | `0x83` | — |
//! | `Error`        | `0x84` | UTF-8 message |
//!
//! Decoding is **allocation-safe against hostile peers**: the length
//! prefix is checked against [`MAX_FRAME_LEN`] *before* any buffer is
//! sized from it, so an adversarial `0xffffffff` prefix is rejected with
//! `InvalidData` instead of a multi-gigabyte allocation. Body lengths are
//! cross-checked against their element counts the same way.

use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use tabbin_index::{EngineStats, Hit, MicroBatchStats, ShardedStats};

/// Hard ceiling on one frame's payload (1 MiB). A dim-4096 query is
/// ~16 KiB; the bound leaves two orders of magnitude of headroom while
/// keeping the worst hostile allocation harmless.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

const OP_QUERY: u8 = 0x01;
const OP_STATS: u8 = 0x02;
const OP_HITS: u8 = 0x81;
const OP_STATS_REPLY: u8 = 0x82;
const OP_OVERLOADED: u8 = 0x83;
const OP_ERROR: u8 = 0x84;

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Top-`k` over one query vector.
    Query {
        /// How many hits to return.
        k: u32,
        /// The query vector (dimension is validated server-side).
        vector: Vec<f32>,
    },
    /// Snapshot the server's health counters.
    Stats,
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Ranked hits for a `Query`.
    Hits(Vec<Hit>),
    /// The health snapshot for a `Stats` request.
    Stats(Box<StatsReply>),
    /// The admission queue was full; the request was shed, not queued.
    Overloaded,
    /// The request was malformed or unserviceable (e.g. wrong dimension).
    Error(String),
}

/// The server's `Stats` payload: storage, engine, batcher, and admission
/// counters in one reply — the health endpoint the ROADMAP promised.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Per-shard storage stats (live/tombstones/segments/pending rows).
    pub shards: ShardedStats,
    /// Per-shard pending depth (tombstones + unsealed rows), shard order —
    /// the head-of-line-blocking signal across the fan-out.
    pub shard_depths: Vec<usize>,
    /// Query-engine cache and storage-call counters.
    pub engine: EngineStats,
    /// Micro-batcher coalescing counters.
    pub batcher: MicroBatchStats,
    /// Requests currently admitted and waiting for a worker.
    pub queue_depth: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Requests shed with `Overloaded` since the server started.
    pub shed: u64,
    /// Query requests served since the server started.
    pub served: u64,
}

/// Writes one frame (length prefix + payload). Refuses payloads past
/// [`MAX_FRAME_LEN`] — the peer's decoder would reject them anyway, and
/// erroring here keeps the stream's framing intact.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "outbound frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte bound",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. Rejects length prefixes of zero or beyond
/// [`MAX_FRAME_LEN`] **before allocating anything** sized by them.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty frame"));
    }
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte bound"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Encodes a request payload (no length prefix; [`write_frame`] adds it).
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Query { k, vector } => {
            let mut out = Vec::with_capacity(1 + 8 + 4 * vector.len());
            out.push(OP_QUERY);
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&(vector.len() as u32).to_le_bytes());
            for x in vector {
                out.extend_from_slice(&x.to_le_bytes());
            }
            out
        }
        Request::Stats => vec![OP_STATS],
    }
}

/// Decodes a request payload.
pub fn decode_request(payload: &[u8]) -> io::Result<Request> {
    let mut cur = Cursor::new(payload);
    match cur.u8()? {
        OP_QUERY => {
            let k = cur.u32()?;
            let n = cur.u32()? as usize;
            // n came off the wire: cross-check against the bytes actually
            // present before sizing a buffer from it.
            if cur.remaining() != n * 4 {
                return Err(invalid(format!(
                    "query of {n} components with {} body bytes",
                    cur.remaining()
                )));
            }
            let vector = (0..n).map(|_| cur.f32()).collect::<io::Result<Vec<f32>>>()?;
            cur.done()?;
            Ok(Request::Query { k, vector })
        }
        OP_STATS => {
            cur.done()?;
            Ok(Request::Stats)
        }
        op => Err(invalid(format!("unknown request opcode {op:#04x}"))),
    }
}

/// Encodes a response payload (no length prefix; [`write_frame`] adds it).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Hits(hits) => {
            let mut out = Vec::with_capacity(1 + 4 + 12 * hits.len());
            out.push(OP_HITS);
            out.extend_from_slice(&(hits.len() as u32).to_le_bytes());
            for h in hits {
                out.extend_from_slice(&h.id.to_le_bytes());
                out.extend_from_slice(&h.score.to_le_bytes());
            }
            out
        }
        Response::Stats(stats) => {
            let json = serde_json::to_string(stats.as_ref()).expect("StatsReply serializes");
            let mut out = Vec::with_capacity(1 + json.len());
            out.push(OP_STATS_REPLY);
            out.extend_from_slice(json.as_bytes());
            out
        }
        Response::Overloaded => vec![OP_OVERLOADED],
        Response::Error(msg) => {
            let mut out = Vec::with_capacity(1 + msg.len());
            out.push(OP_ERROR);
            out.extend_from_slice(msg.as_bytes());
            out
        }
    }
}

/// Decodes a response payload.
pub fn decode_response(payload: &[u8]) -> io::Result<Response> {
    let mut cur = Cursor::new(payload);
    match cur.u8()? {
        OP_HITS => {
            let n = cur.u32()? as usize;
            if cur.remaining() != n * 12 {
                return Err(invalid(format!("{n} hits with {} body bytes", cur.remaining())));
            }
            let mut hits = Vec::with_capacity(n);
            for _ in 0..n {
                let id = cur.u64()?;
                let score = cur.f32()?;
                hits.push(Hit { id, score });
            }
            cur.done()?;
            Ok(Response::Hits(hits))
        }
        OP_STATS_REPLY => {
            let json = std::str::from_utf8(cur.rest())
                .map_err(|e| invalid(format!("stats reply is not UTF-8: {e}")))?;
            let stats: StatsReply = serde_json::from_str(json)
                .map_err(|e| invalid(format!("stats reply does not parse: {e}")))?;
            Ok(Response::Stats(Box::new(stats)))
        }
        OP_OVERLOADED => {
            cur.done()?;
            Ok(Response::Overloaded)
        }
        OP_ERROR => {
            let msg = std::str::from_utf8(cur.rest())
                .map_err(|e| invalid(format!("error reply is not UTF-8: {e}")))?
                .to_string();
            Ok(Response::Error(msg))
        }
        op => Err(invalid(format!("unknown response opcode {op:#04x}"))),
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// A bounds-checked little-endian reader over one payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(invalid(format!("truncated frame: wanted {n} more bytes")));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f32(&mut self) -> io::Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Asserts the payload was consumed exactly — trailing garbage is a
    /// framing bug on the peer's side and must not pass silently.
    fn done(&self) -> io::Result<()> {
        if self.remaining() != 0 {
            return Err(invalid(format!("{} trailing bytes after message", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrips() {
        let req = Request::Query { k: 10, vector: vec![1.5, -2.25, 0.0, f32::MIN_POSITIVE] };
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        let empty = Request::Query { k: 0, vector: Vec::new() };
        assert_eq!(decode_request(&encode_request(&empty)).unwrap(), empty);
        assert_eq!(decode_request(&encode_request(&Request::Stats)).unwrap(), Request::Stats);
    }

    #[test]
    fn responses_roundtrip() {
        let hits =
            Response::Hits(vec![Hit { id: 7, score: 0.99 }, Hit { id: u64::MAX, score: -1.0 }]);
        assert_eq!(decode_response(&encode_response(&hits)).unwrap(), hits);
        assert_eq!(
            decode_response(&encode_response(&Response::Overloaded)).unwrap(),
            Response::Overloaded
        );
        let err = Response::Error("no such dimension".into());
        assert_eq!(decode_response(&encode_response(&err)).unwrap(), err);
        let stats = Response::Stats(Box::new(StatsReply {
            shard_depths: vec![3, 1],
            queue_capacity: 64,
            shed: 2,
            served: 40,
            ..StatsReply::default()
        }));
        assert_eq!(decode_response(&encode_response(&stats)).unwrap(), stats);
    }

    #[test]
    fn nan_scores_survive_the_wire_bit_for_bit() {
        let hits = vec![Hit { id: 1, score: f32::NAN }, Hit { id: 2, score: f32::INFINITY }];
        let decoded = decode_response(&encode_response(&Response::Hits(hits.clone()))).unwrap();
        let Response::Hits(got) = decoded else { panic!("wrong variant") };
        for (a, b) in hits.iter().zip(&got) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        // A hostile 4 GiB length prefix: read_frame must error out after
        // the 4 prefix bytes without sizing a buffer from it.
        let mut stream: &[u8] = &0xffff_ffffu32.to_le_bytes();
        let err = read_frame(&mut stream).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds"), "unhelpful error: {err}");
        // Just past the bound is rejected too; at the bound it would read.
        let mut at_edge: &[u8] = &(MAX_FRAME_LEN + 1).to_le_bytes();
        assert_eq!(read_frame(&mut at_edge).unwrap_err().kind(), io::ErrorKind::InvalidData);
        let mut zero: &[u8] = &0u32.to_le_bytes();
        assert_eq!(read_frame(&mut zero).unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupt_bodies_are_rejected() {
        // Element count inconsistent with the body length.
        let mut req = encode_request(&Request::Query { k: 5, vector: vec![1.0, 2.0] });
        req[5..9].copy_from_slice(&100u32.to_le_bytes());
        assert!(decode_request(&req).is_err(), "inflated component count must not decode");
        // Unknown opcodes, truncation, and trailing garbage.
        assert!(decode_request(&[0x7f]).is_err());
        assert!(decode_request(&[OP_QUERY, 1]).is_err());
        let mut trailing = encode_request(&Request::Stats);
        trailing.push(0);
        assert!(decode_request(&trailing).is_err());
        let mut resp = encode_response(&Response::Hits(vec![Hit { id: 1, score: 1.0 }]));
        resp[1..5].copy_from_slice(&2u32.to_le_bytes());
        assert!(decode_response(&resp).is_err(), "inflated hit count must not decode");
    }

    #[test]
    fn frames_roundtrip_through_a_byte_stream() {
        let payloads: Vec<Vec<u8>> = vec![
            encode_request(&Request::Query { k: 3, vector: vec![0.5; 17] }),
            encode_request(&Request::Stats),
            encode_response(&Response::Overloaded),
        ];
        let mut stream = Vec::new();
        for p in &payloads {
            write_frame(&mut stream, p).unwrap();
        }
        let mut r: &[u8] = &stream;
        for p in &payloads {
            assert_eq!(&read_frame(&mut r).unwrap(), p);
        }
        assert!(read_frame(&mut r).is_err(), "EOF must surface as an error");
    }
}
