//! The per-connection nonblocking state machine.
//!
//! [`ConnState`] owns everything about one multiplexed connection except
//! the socket itself: inbound partial-frame reassembly, the bounded
//! outbound write queue with partial-write resume, the set of in-flight
//! request tags, and the close-after-flush lifecycle. It is generic over
//! `Read`/`Write` so the state-machine fuzz tests can drive it one byte
//! at a time through in-memory streams — the reactor plugs in a
//! nonblocking `TcpStream`, the tests plug in throttled cursors.
//!
//! The reactor makes the policy decisions (interest registration, read
//! pausing, shedding); this type only reports the facts they key off:
//! queued byte counts, in-flight depth, and whether a close is pending.

use crate::wire::FrameAssembler;
use std::collections::{HashSet, VecDeque};
use std::io::{self, Read, Write};

/// How many bytes one `read_some` call will pull before voluntarily
/// yielding back to the event loop, so a firehose peer cannot starve
/// other connections. Level-triggered registration re-arms immediately.
const READ_QUANTUM: usize = 256 * 1024;

/// What a readable-event service pass produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// The socket is drained (or the quantum spent); complete frame
    /// payloads decoded along the way.
    Progress(Vec<Vec<u8>>),
    /// The peer closed its end; any payloads completed by the final bytes.
    Eof(Vec<Vec<u8>>),
}

/// The socket-independent state of one multiplexed connection.
pub struct ConnState {
    asm: FrameAssembler,
    /// Fully framed (length-prefixed) outbound buffers, oldest first.
    write_queue: VecDeque<Vec<u8>>,
    /// Bytes of the queue head already written to the socket.
    write_pos: usize,
    /// Total unwritten bytes across the queue.
    queued_bytes: usize,
    /// Tags admitted to the worker pool and not yet answered.
    in_flight: HashSet<u64>,
    /// Close the connection once the write queue drains.
    close_after_flush: bool,
}

impl Default for ConnState {
    fn default() -> Self {
        Self::new()
    }
}

impl ConnState {
    pub fn new() -> Self {
        ConnState {
            asm: FrameAssembler::new(),
            write_queue: VecDeque::new(),
            write_pos: 0,
            queued_bytes: 0,
            in_flight: HashSet::new(),
            close_after_flush: false,
        }
    }

    // -- inbound ---------------------------------------------------------

    /// Services a readable event: reads until the source would block, EOF,
    /// or the fairness quantum is spent, reassembling frames as bytes
    /// arrive. Framing violations (hostile length prefixes) surface as
    /// `InvalidData` — the connection must then be torn down, since the
    /// stream position is unrecoverable.
    pub fn read_some<R: Read>(&mut self, r: &mut R) -> io::Result<ReadOutcome> {
        let mut payloads = Vec::new();
        let mut taken = 0usize;
        let mut buf = [0u8; 16 * 1024];
        loop {
            match r.read(&mut buf) {
                Ok(0) => return Ok(ReadOutcome::Eof(payloads)),
                Ok(n) => {
                    payloads.extend(self.asm.push(&buf[..n])?);
                    taken += n;
                    if taken >= READ_QUANTUM {
                        return Ok(ReadOutcome::Progress(payloads));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(ReadOutcome::Progress(payloads));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    // -- outbound --------------------------------------------------------

    /// Queues one payload, framing it with the length prefix. The caller
    /// bounds the queue via [`queued_bytes`](Self::queued_bytes) — this
    /// type records, the reactor enforces.
    pub fn enqueue(&mut self, payload: &[u8]) {
        let mut framed = Vec::with_capacity(4 + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(payload);
        self.queued_bytes += framed.len();
        self.write_queue.push_back(framed);
    }

    /// Services a writable event: writes queued frames until the sink
    /// would block or the queue drains. Returns whether the queue is now
    /// empty. Partial writes resume exactly where they stopped.
    pub fn flush<W: Write>(&mut self, w: &mut W) -> io::Result<bool> {
        while let Some(front) = self.write_queue.front() {
            match w.write(&front[self.write_pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(io::ErrorKind::WriteZero, "peer stopped reading"))
                }
                Ok(n) => {
                    self.write_pos += n;
                    self.queued_bytes -= n;
                    if self.write_pos == front.len() {
                        self.write_queue.pop_front();
                        self.write_pos = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Unwritten outbound bytes — the reactor's backpressure signal.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Whether there is anything left to write.
    pub fn wants_write(&self) -> bool {
        !self.write_queue.is_empty()
    }

    // -- in-flight tags --------------------------------------------------

    /// Claims `tag` for an admitted request. `false` if the tag is
    /// already in flight — the duplicate must be rejected, otherwise two
    /// replies would carry the same tag and the client could not tell
    /// them apart.
    pub fn begin_tag(&mut self, tag: u64) -> bool {
        self.in_flight.insert(tag)
    }

    /// Releases `tag` once its final reply frame is queued (or it was
    /// shed after claiming).
    pub fn finish_tag(&mut self, tag: u64) {
        self.in_flight.remove(&tag);
    }

    /// Requests admitted and not yet answered.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    // -- lifecycle -------------------------------------------------------

    /// Marks the connection for close once the write queue drains — used
    /// after fatal framing errors, where the error reply should still
    /// reach the peer.
    pub fn close_after_flush(&mut self) {
        self.close_after_flush = true;
    }

    /// Whether a deferred close is pending.
    pub fn closing(&self) -> bool {
        self.close_after_flush
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_request, write_frame, Request};

    /// A writer that accepts at most `cap` bytes per call and rejects
    /// every other call with `WouldBlock` — a slow reader's socket.
    struct Throttled {
        out: Vec<u8>,
        cap: usize,
        blocked: bool,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.blocked = !self.blocked;
            if self.blocked {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "throttled"));
            }
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn read_reassembles_across_wouldblock_boundaries() {
        let reqs: Vec<Vec<u8>> = (1..=3)
            .map(|t| encode_request(t, &Request::Query { k: 4, vector: vec![t as f32; 5] }))
            .collect();
        let mut stream = Vec::new();
        for p in &reqs {
            write_frame(&mut stream, p).unwrap();
        }

        /// Yields one byte per read, WouldBlock between bytes, then EOF.
        struct OneByte {
            data: Vec<u8>,
            pos: usize,
            starve: bool,
        }
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                self.starve = !self.starve;
                if self.starve {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "later"));
                }
                if self.pos == self.data.len() {
                    return Ok(0);
                }
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }

        let mut conn = ConnState::new();
        let mut src = OneByte { data: stream, pos: 0, starve: false };
        let mut got = Vec::new();
        loop {
            match conn.read_some(&mut src).unwrap() {
                ReadOutcome::Progress(p) => got.extend(p),
                ReadOutcome::Eof(p) => {
                    got.extend(p);
                    break;
                }
            }
        }
        assert_eq!(got, reqs);
    }

    #[test]
    fn flush_resumes_partial_writes_and_reports_drain() {
        let mut conn = ConnState::new();
        conn.enqueue(&[1; 100]);
        conn.enqueue(&[2; 50]);
        assert_eq!(conn.queued_bytes(), 104 + 54);
        assert!(conn.wants_write());

        let mut sink = Throttled { out: Vec::new(), cap: 7, blocked: false };
        let mut drained = false;
        for _ in 0..200 {
            if conn.flush(&mut sink).unwrap() {
                drained = true;
                break;
            }
        }
        assert!(drained, "a 7-byte-per-call sink never drained 158 bytes");
        assert_eq!(conn.queued_bytes(), 0);
        assert!(!conn.wants_write());

        // The sink saw exactly the two frames, bytes intact and in order.
        let mut expect = Vec::new();
        write_frame(&mut expect, &[1; 100]).unwrap();
        write_frame(&mut expect, &[2; 50]).unwrap();
        assert_eq!(sink.out, expect);
    }

    #[test]
    fn duplicate_tags_are_refused_until_finished() {
        let mut conn = ConnState::new();
        assert!(conn.begin_tag(7));
        assert!(!conn.begin_tag(7), "same tag in flight twice");
        assert!(conn.begin_tag(8));
        assert_eq!(conn.in_flight(), 2);
        conn.finish_tag(7);
        assert!(conn.begin_tag(7), "finished tags are reusable");
    }

    #[test]
    fn framing_violation_surfaces_as_invalid_data() {
        let mut conn = ConnState::new();
        let mut hostile: &[u8] = &0xffff_ffffu32.to_le_bytes();
        let err = conn.read_some(&mut hostile).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
