//! End-to-end serving tests over real loopback TCP connections: wire
//! results must be bit-identical to in-process engine results (blocking
//! *and* pipelined, in-order and out-of-order), the admission queue must
//! shed (never hang) past capacity with a retry hint, large replies must
//! stream in chunks, and protocol violations (tag 0, duplicate tags,
//! hostile framing) must be rejected without taking the server down.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tabbin_index::{EngineConfig, Hit, LshParams, QueryEngine, ShardedStore, StoreConfig};
use tabbin_serve::wire::{self, encode_request, Request};
use tabbin_serve::{Client, PipelinedClient, QueryOutcome, Response, ServeConfig, Server};

fn random_vecs(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect()).collect()
}

/// A 3-shard LSH corpus behind an engine, shared by server and reference.
fn corpus_engine(vecs: &[Vec<f32>]) -> Arc<QueryEngine<ShardedStore>> {
    let cfg = StoreConfig { lsh: Some(LshParams::default()), seed: 9, ..StoreConfig::default() };
    let mut store = ShardedStore::new(vecs[0].len(), 3, cfg);
    for v in vecs {
        store.insert(v);
    }
    Arc::new(QueryEngine::new(store, EngineConfig::lsh()))
}

fn assert_bit_identical(wire: &[Hit], local: &[Hit], what: &str) {
    assert_eq!(wire.len(), local.len(), "{what}: lengths diverged");
    for (w, l) in wire.iter().zip(local) {
        assert_eq!(w.id, l.id, "{what}: ids diverged over the wire");
        assert_eq!(w.score.to_bits(), l.score.to_bits(), "{what}: score bits diverged");
    }
}

#[test]
fn wire_results_are_bit_identical_to_in_process_engine() {
    let vecs = random_vecs(120, 16, 1);
    let engine = corpus_engine(&vecs);
    let server =
        Server::bind("127.0.0.1:0", Arc::clone(&engine), ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    for q in vecs.iter().take(24) {
        let wire = match client.query(q, 8).expect("query") {
            QueryOutcome::Hits(hits) => hits,
            QueryOutcome::Overloaded { .. } => panic!("uncontended query shed"),
        };
        let local: Vec<Hit> = engine.query(q, 8);
        assert_bit_identical(&wire, &local, "blocking client");
    }
    drop(client);
    server.shutdown();
}

#[test]
fn pipelined_out_of_order_completion_matches_blocking_client() {
    let vecs = random_vecs(200, 16, 11);
    let engine = corpus_engine(&vecs);
    // A twin engine as reference so the server engine's cache state (and
    // batching) can't mask a routing bug.
    let reference = corpus_engine(&vecs);
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServeConfig { workers: 4, ..ServeConfig::default() },
    )
    .expect("bind");

    let mut pipelined =
        PipelinedClient::connect(server.local_addr(), 16).expect("pipelined connect");
    assert_eq!(pipelined.window(), 16);

    // Submit a burst wider than the window, then claim results in
    // *reverse* submission order: whatever order the four workers finish
    // in, the client must buffer and match strictly by tag.
    let queries = &vecs[..48];
    let tags: Vec<u64> = queries.iter().map(|q| pipelined.submit(q, 7).expect("submit")).collect();
    for (tag, q) in tags.iter().zip(queries).rev() {
        let hits = match pipelined.wait(*tag).expect("wait") {
            QueryOutcome::Hits(hits) => hits,
            QueryOutcome::Overloaded { .. } => panic!("default queue shed a 48-burst"),
        };
        assert_bit_identical(&hits, &reference.query(q, 7), "pipelined reverse-order claim");
    }
    assert_eq!(pipelined.in_flight(), 0);

    // query_all returns submission order regardless of completion order,
    // and agrees with a fresh blocking client on the same connection set.
    let outcomes = pipelined.query_all(&vecs[48..96], 5).expect("query_all");
    let mut blocking = Client::connect(server.local_addr()).expect("blocking connect");
    for (q, outcome) in vecs[48..96].iter().zip(outcomes) {
        let QueryOutcome::Hits(pip) = outcome else { panic!("pipelined query shed") };
        let QueryOutcome::Hits(blk) = blocking.query(q, 5).expect("blocking query") else {
            panic!("blocking query shed");
        };
        assert_bit_identical(&pip, &blk, "pipelined vs blocking");
    }
    server.shutdown();
}

#[test]
fn concurrent_clients_get_correct_coalesced_results() {
    let vecs = random_vecs(150, 12, 2);
    let engine = corpus_engine(&vecs);
    // Reference answers from a twin engine (same store build) so the
    // server engine's cache state doesn't matter.
    let reference = corpus_engine(&vecs);
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServeConfig { workers: 4, queue_capacity: 64, ..ServeConfig::default() },
    )
    .expect("bind");
    let addr = server.local_addr();

    let handles: Vec<_> = (0..8)
        .map(|c| {
            let queries: Vec<Vec<f32>> = vecs[c * 12..(c + 1) * 12].to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                queries
                    .iter()
                    .map(|q| match client.query(q, 5).expect("query") {
                        QueryOutcome::Hits(hits) => hits,
                        QueryOutcome::Overloaded { .. } => panic!("64-deep queue shed 8 clients"),
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for (c, h) in handles.into_iter().enumerate() {
        let lists = h.join().expect("client thread panicked");
        for (qi, hits) in lists.iter().enumerate() {
            let want = reference.query(&vecs[c * 12 + qi], 5);
            assert_eq!(hits, &want, "client {c} query {qi} diverged");
        }
    }

    let stats = server.stats();
    assert_eq!(stats.served, 96);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.batcher.submitted, 96);
    assert!(stats.batcher.batches <= 96, "more batches than submissions");
    server.shutdown();
}

#[test]
fn overload_sheds_with_an_explicit_reply_and_never_hangs() {
    let vecs = random_vecs(4000, 32, 3);
    let engine = corpus_engine(&vecs);
    // One worker and a 2-deep queue: a burst of 24 clients must overflow.
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServeConfig { workers: 1, queue_capacity: 2, ..ServeConfig::default() },
    )
    .expect("bind");
    let addr = server.local_addr();

    let handles: Vec<_> = (0..24)
        .map(|c| {
            let q = vecs[c].clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut sheds = 0u64;
                let mut served = 0u64;
                for _ in 0..8 {
                    match client.query(&q, 10).expect("query must answer, not hang") {
                        QueryOutcome::Hits(hits) => {
                            assert!(!hits.is_empty());
                            served += 1;
                        }
                        QueryOutcome::Overloaded { retry_after_millis } => {
                            assert!(retry_after_millis >= 1, "hint must suggest a real backoff");
                            sheds += 1;
                        }
                    }
                }
                (served, sheds)
            })
        })
        .collect();
    let mut total_served = 0;
    let mut total_shed = 0;
    for h in handles {
        let (served, sheds) = h.join().expect("client thread panicked");
        total_served += served;
        total_shed += sheds;
    }
    assert_eq!(total_served + total_shed, 24 * 8, "every request got an answer");
    assert!(total_shed > 0, "24 clients against a 2-deep queue never overflowed");
    let stats = server.stats();
    assert_eq!(stats.shed, total_shed);
    assert_eq!(stats.served, total_served);
    server.shutdown();
}

#[test]
fn connection_flood_is_shed_at_the_cap() {
    let vecs = random_vecs(40, 8, 7);
    let engine = corpus_engine(&vecs);
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServeConfig { max_connections: 2, ..ServeConfig::default() },
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut c1 = Client::connect(addr).expect("c1");
    let mut c2 = Client::connect(addr).expect("c2");
    assert!(matches!(c1.query(&vecs[0], 3).expect("c1 query"), QueryOutcome::Hits(_)));
    assert!(matches!(c2.query(&vecs[1], 3).expect("c2 query"), QueryOutcome::Hits(_)));

    // The third connection is accepted at the TCP level, answered with a
    // single connection-level Overloaded frame, and closed.
    let mut c3 = Client::connect(addr).expect("c3 tcp connect");
    match c3.query(&vecs[2], 3) {
        Ok(QueryOutcome::Overloaded { .. }) => {}
        // The close can race the client's write; a refused exchange is
        // also acceptable — the point is no hang and no service.
        Err(_) => {}
        Ok(QueryOutcome::Hits(_)) => panic!("third connection was served past the cap"),
    }

    // Capacity frees once a connection goes away.
    drop(c1);
    let mut recovered = false;
    for _ in 0..200 {
        if let Ok(mut c) = Client::connect(addr) {
            if matches!(c.query(&vecs[3], 3), Ok(QueryOutcome::Hits(_))) {
                recovered = true;
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(recovered, "closing a connection never freed a slot");
    drop(c2);
    server.shutdown();
}

#[test]
fn large_k_replies_stream_in_chunks() {
    // More live rows than one Hits chunk can carry: the reply must
    // arrive as multiple chunk frames and reassemble exactly — v1's
    // MAX_REPLY_HITS rejection is gone.
    let n = wire::MAX_CHUNK_HITS + 400;
    let vecs = random_vecs(n, 8, 6);
    // Exact scan so every live row is a candidate — LSH blocking would
    // thin the result below one chunk and defeat the test.
    let cfg = StoreConfig { seed: 9, ..StoreConfig::default() };
    let mut store = ShardedStore::new(8, 3, cfg);
    for v in &vecs {
        store.insert(v);
    }
    let engine = Arc::new(QueryEngine::new(store, EngineConfig::exact()));
    let server =
        Server::bind("127.0.0.1:0", Arc::clone(&engine), ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let k = n + 100; // bounded by the corpus, not the wire
    let wire_hits = match client.query(&vecs[0], k).expect("large-k query") {
        QueryOutcome::Hits(hits) => hits,
        QueryOutcome::Overloaded { .. } => panic!("uncontended query shed"),
    };
    assert!(
        wire_hits.len() > wire::MAX_CHUNK_HITS,
        "result of {} hits fits one chunk — the test corpus is too small",
        wire_hits.len()
    );
    assert_bit_identical(&wire_hits, &engine.query(&vecs[0], k), "chunked reply");
    server.shutdown();
}

#[test]
fn stats_reply_reports_storage_engine_and_admission_state() {
    let vecs = random_vecs(90, 10, 4);
    let engine = corpus_engine(&vecs);
    let server =
        Server::bind("127.0.0.1:0", Arc::clone(&engine), ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Same query twice: second one must be an engine cache hit.
    for _ in 0..2 {
        match client.query(&vecs[0], 5).expect("query") {
            QueryOutcome::Hits(hits) => assert_eq!(hits.len(), 5),
            QueryOutcome::Overloaded { .. } => panic!("uncontended query shed"),
        }
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.shards.totals().live, 90);
    assert_eq!(stats.shards.shards.len(), 3);
    assert_eq!(stats.shard_depths.len(), 3);
    assert_eq!(
        stats.shard_depths,
        stats.shards.depths(),
        "depth vector must mirror the per-shard stats"
    );
    assert_eq!(stats.engine.cache_hits, 1, "repeat query missed the cache");
    assert_eq!(stats.served, 2);
    assert_eq!(stats.queue_capacity, ServeConfig::default().resolved_queue_capacity());
    assert_eq!(stats.connections, 1, "one client connected when stats were read");
    assert_eq!(stats.shed, 0);
    server.shutdown();
}

#[test]
fn malformed_and_mismatched_requests_get_error_replies() {
    let vecs = random_vecs(30, 8, 5);
    let engine = corpus_engine(&vecs);
    let server =
        Server::bind("127.0.0.1:0", Arc::clone(&engine), ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Wrong dimension: explicit server-side error, connection stays alive.
    let err = client.query(&[1.0; 4], 5).expect_err("dim mismatch must error");
    assert!(err.to_string().contains("8"), "unhelpful error: {err}");
    match client.query(&vecs[0], 3).expect("connection survives an error reply") {
        QueryOutcome::Hits(hits) => assert_eq!(hits.len(), 3),
        QueryOutcome::Overloaded { .. } => panic!("uncontended query shed"),
    }

    // A hostile oversized length prefix: the server answers with a
    // connection-level error frame and hangs up without allocating the
    // claimed 4 GiB.
    use std::io::{Read, Write};
    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect raw");
    raw.write_all(&0xffff_ffffu32.to_le_bytes()).expect("write hostile prefix");
    raw.flush().ok();
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).expect("server must reply then close");
    let payload = wire::read_frame(&mut &reply[..]).expect("one reply frame");
    match wire::decode_response(&payload).expect("decodes") {
        (tag, Response::Error(msg)) => {
            assert_eq!(tag, wire::CONNECTION_TAG, "framing errors answer no request");
            assert!(msg.contains("outside"), "unhelpful error: {msg}");
        }
        other => panic!("expected a connection-level error reply, got {other:?}"),
    }
    server.shutdown();
}

/// Reads every frame the server sends until it hangs up.
fn drain_frames(raw: &mut std::net::TcpStream) -> Vec<(u64, Response)> {
    use std::io::Read;
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).expect("server must reply then close");
    let mut frames = Vec::new();
    let mut rest: &[u8] = &reply;
    while !rest.is_empty() {
        let payload = wire::read_frame(&mut rest).expect("well-formed reply frame");
        frames.push(wire::decode_response(&payload).expect("decodable reply"));
    }
    frames
}

#[test]
fn reserved_and_duplicate_tags_are_protocol_violations() {
    use std::io::Write;
    let vecs = random_vecs(30, 8, 8);
    let engine = corpus_engine(&vecs);
    let server =
        Server::bind("127.0.0.1:0", Arc::clone(&engine), ServeConfig::default()).expect("bind");

    // Tag 0 is the connection-level tag; a request wearing it could never
    // be answered unambiguously. The server rejects and hangs up.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect raw");
    let req = Request::Query { k: 3, vector: vecs[0].clone() };
    let mut framed = Vec::new();
    wire::write_frame(&mut framed, &encode_request(0, &req)).expect("frame");
    raw.write_all(&framed).expect("send tag-0 request");
    raw.flush().ok();
    let frames = drain_frames(&mut raw);
    assert!(
        frames.iter().any(|(tag, resp)| {
            *tag == wire::CONNECTION_TAG
                && matches!(resp, Response::Error(msg) if msg.contains("reserved"))
        }),
        "no connection-level reserved-tag error in {frames:?}"
    );

    // Two in-flight requests with the same tag: both written in one
    // burst so they land in one read pass — the second must be rejected
    // as fatal (its reply would be indistinguishable from the first's).
    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect raw");
    let mut burst = Vec::new();
    wire::write_frame(&mut burst, &encode_request(7, &req)).expect("frame");
    wire::write_frame(&mut burst, &encode_request(7, &req)).expect("frame");
    raw.write_all(&burst).expect("send duplicate tags");
    raw.flush().ok();
    let frames = drain_frames(&mut raw);
    assert!(
        frames.iter().any(|(tag, resp)| {
            *tag == wire::CONNECTION_TAG
                && matches!(resp, Response::Error(msg) if msg.contains("already in flight"))
        }),
        "no duplicate-tag error in {frames:?}"
    );
    // Whatever else arrived can only be the first request's reply.
    for (tag, resp) in &frames {
        if *tag != wire::CONNECTION_TAG {
            assert_eq!(*tag, 7);
            assert!(matches!(resp, Response::Hits { .. }), "unexpected reply {resp:?}");
        }
    }
    server.shutdown();
}
