//! State-machine fuzz for the per-connection nonblocking machinery:
//! arbitrary frame streams fed through [`ConnState::read_some`] in
//! arbitrary splits (down to one byte per readiness event, `WouldBlock`
//! between) must reassemble the exact payload sequence, and arbitrary
//! enqueue/flush schedules against a slow reader (tiny partial writes,
//! `WouldBlock` interspersed) must emit the exact framed byte stream.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::io::{self, Read, Write};
use tabbin_serve::conn::{ConnState, ReadOutcome};
use tabbin_serve::wire::read_frame;

/// A reader that yields the stream in a fixed schedule of chunk sizes,
/// with `WouldBlock` between chunks — one "readiness event" per chunk.
struct Choppy {
    data: Vec<u8>,
    pos: usize,
    /// Bytes to yield per readable event; cycles when exhausted.
    schedule: Vec<usize>,
    turn: usize,
    starve: bool,
}

impl Read for Choppy {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.starve = !self.starve;
        if self.starve {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "not yet"));
        }
        if self.pos == self.data.len() {
            return Ok(0);
        }
        let want = self.schedule[self.turn % self.schedule.len()].max(1);
        self.turn += 1;
        let n = want.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A writer accepting at most a scheduled number of bytes per call, with
/// `WouldBlock` interspersed — a peer draining its socket slowly.
struct SlowReader {
    out: Vec<u8>,
    schedule: Vec<usize>,
    turn: usize,
}

impl Write for SlowReader {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let step = self.schedule[self.turn % self.schedule.len()];
        self.turn += 1;
        if step == 0 {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "buffer full"));
        }
        let n = step.min(buf.len());
        self.out.extend_from_slice(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Inbound: any payload sequence, framed, then read through any
    /// split schedule, reassembles exactly — no byte lost, duplicated,
    /// or reordered, no payload split or merged.
    #[test]
    fn reads_reassemble_exactly_under_arbitrary_splits(
        payloads in pvec(pvec(0u8..=255, 1..80), 0..12),
        schedule in pvec(1usize..40, 1..16),
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&(p.len() as u32).to_le_bytes());
            stream.extend_from_slice(p);
        }
        let mut src = Choppy { data: stream, pos: 0, schedule, turn: 0, starve: false };
        let mut conn = ConnState::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        loop {
            match conn.read_some(&mut src).expect("well-formed stream") {
                ReadOutcome::Progress(p) => got.extend(p),
                ReadOutcome::Eof(p) => {
                    got.extend(p);
                    break;
                }
            }
        }
        prop_assert_eq!(got, payloads);
    }

    /// Outbound: any enqueue schedule flushed through any slow-reader
    /// schedule emits exactly the framed stream, resumable at any byte.
    #[test]
    fn flushes_emit_exact_framed_stream_under_partial_writes(
        payloads in pvec(pvec(0u8..=255, 1..80), 1..12),
        // Zero steps are WouldBlock turns.
        mut schedule in pvec(0usize..30, 1..16),
        // How many payloads to enqueue before each flush round.
        batch in 1usize..5,
    ) {
        // The schedule cycles, so one positive step guarantees the drain
        // loop below always makes progress.
        schedule.push(7);
        let mut sink = SlowReader { out: Vec::new(), schedule, turn: 0 };
        let mut conn = ConnState::new();
        let mut queued = 0usize;
        for (i, p) in payloads.iter().enumerate() {
            conn.enqueue(p);
            queued += 4 + p.len();
            prop_assert_eq!(conn.queued_bytes(), queued);
            if (i + 1) % batch == 0 {
                // Interleave partial flushes with enqueues: the write
                // cursor must survive new frames arriving behind it.
                if conn.flush(&mut sink).expect("flush") {
                    queued = 0;
                } else {
                    queued = conn.queued_bytes();
                }
            }
        }
        for _ in 0..100_000 {
            if conn.flush(&mut sink).expect("flush") {
                break;
            }
        }
        prop_assert!(!conn.wants_write(), "schedule with progress never drained");
        prop_assert_eq!(conn.queued_bytes(), 0);

        // The emitted bytes are exactly the framed payloads, in order.
        let mut r: &[u8] = &sink.out;
        for p in &payloads {
            prop_assert_eq!(&read_frame(&mut r).expect("read back"), p);
        }
        prop_assert!(r.is_empty(), "trailing bytes after the last frame");
    }

    /// In-flight tag bookkeeping under arbitrary begin/finish sequences:
    /// a tag is claimable iff not currently in flight, and the count
    /// tracks the distinct live set exactly.
    #[test]
    fn tag_tracking_matches_a_reference_set(
        ops in pvec((0u64..8, 0u8..2), 0..64),
    ) {
        let mut conn = ConnState::new();
        let mut live = std::collections::HashSet::new();
        for (tag, begin) in ops {
            if begin == 1 {
                prop_assert_eq!(conn.begin_tag(tag), live.insert(tag));
            } else {
                conn.finish_tag(tag);
                live.remove(&tag);
            }
            prop_assert_eq!(conn.in_flight(), live.len());
        }
    }
}
