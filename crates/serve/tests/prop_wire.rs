//! Property tests for the wire protocol: arbitrary requests and responses
//! must survive encode → frame → unframe → decode exactly, including every
//! `f32` bit pattern a score or query component can take.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use tabbin_index::Hit;
use tabbin_serve::wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    Request, Response,
};
use tabbin_serve::StatsReply;

/// Any f32 bit pattern — NaNs, infinities, subnormals included. The wire
/// must move bits, not values.
fn any_f32_bits() -> impl Strategy<Value = f32> {
    (0u32..=u32::MAX).prop_map(f32::from_bits)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn query_requests_roundtrip(
        k in 0u32..=u32::MAX,
        vector in pvec(any_f32_bits(), 0..64),
    ) {
        let req = Request::Query { k, vector: vector.clone() };
        let decoded = decode_request(&encode_request(&req)).expect("decode");
        let Request::Query { k: dk, vector: dv } = decoded else {
            panic!("wrong request variant");
        };
        prop_assert_eq!(dk, k);
        prop_assert!(bits(&dv) == bits(&vector), "component bits changed on the wire");
    }

    #[test]
    fn hit_responses_roundtrip(
        ids in pvec(0u64..=u64::MAX, 0..40),
        score_bits in pvec(0u32..=u32::MAX, 40),
    ) {
        let hits: Vec<Hit> = ids
            .iter()
            .zip(&score_bits)
            .map(|(&id, &s)| Hit { id, score: f32::from_bits(s) })
            .collect();
        let decoded = decode_response(&encode_response(&Response::Hits(hits.clone())))
            .expect("decode");
        let Response::Hits(got) = decoded else { panic!("wrong response variant") };
        prop_assert_eq!(got.len(), hits.len());
        for (a, b) in hits.iter().zip(&got) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn error_and_stats_responses_roundtrip(
        msg in "[ -~]{0,60}",
        depths in pvec(0usize..10_000, 0..8),
        shed in 0u64..1_000_000,
    ) {
        let err = Response::Error(msg.clone());
        prop_assert_eq!(decode_response(&encode_response(&err)).expect("decode error"), err);
        let stats = Response::Stats(Box::new(StatsReply {
            shard_depths: depths,
            shed,
            ..StatsReply::default()
        }));
        prop_assert_eq!(
            decode_response(&encode_response(&stats)).expect("decode stats"),
            stats
        );
    }

    /// Several frames written back-to-back into one byte stream come back
    /// out in order and exactly — the framing layer never over- or
    /// under-reads.
    #[test]
    fn framed_streams_preserve_message_boundaries(
        vectors in pvec(pvec(any_f32_bits(), 1..16), 1..8),
    ) {
        let payloads: Vec<Vec<u8>> = vectors
            .iter()
            .map(|v| encode_request(&Request::Query { k: 5, vector: v.clone() }))
            .collect();
        let mut stream = Vec::new();
        for p in &payloads {
            write_frame(&mut stream, p).expect("write");
        }
        let mut r: &[u8] = &stream;
        for p in &payloads {
            prop_assert_eq!(&read_frame(&mut r).expect("read"), p);
        }
        prop_assert!(read_frame(&mut r).is_err(), "stream must be exactly consumed");
    }

    /// Truncating a valid frame anywhere must yield an error, never a
    /// short or garbled message.
    #[test]
    fn truncated_frames_error(
        vector in pvec(any_f32_bits(), 1..16),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut stream = Vec::new();
        write_frame(&mut stream, &encode_request(&Request::Query { k: 3, vector }))
            .expect("write");
        let cut = 1 + ((stream.len() - 2) as f64 * cut_frac) as usize;
        let mut r: &[u8] = &stream[..cut];
        match read_frame(&mut r) {
            Err(_) => {}
            Ok(payload) => {
                // The frame survived only if the cut landed past it.
                prop_assert_eq!(cut, stream.len());
                prop_assert!(decode_request(&payload).is_ok());
            }
        }
    }
}
