//! Property tests for wire protocol v2: arbitrary tagged requests and
//! responses must survive encode → frame → unframe → decode exactly
//! (every `f32` bit pattern included), and — the pipelining invariant —
//! **arbitrary interleavings** of many tags' reply frames must demux to
//! the same per-tag results as sequential delivery, bit-identical.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use tabbin_index::Hit;
use tabbin_serve::wire::{
    decode_request, decode_response, encode_hits_payloads_chunked, encode_request, encode_response,
    read_frame, write_frame, Request, Response,
};
use tabbin_serve::{ReplyDemux, StatsReply};

/// Any f32 bit pattern — NaNs, infinities, subnormals included. The wire
/// must move bits, not values.
fn any_f32_bits() -> impl Strategy<Value = f32> {
    (0u32..=u32::MAX).prop_map(f32::from_bits)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn hit_bits(hits: &[Hit]) -> Vec<(u64, u32)> {
    hits.iter().map(|h| (h.id, h.score.to_bits())).collect()
}

/// A reply's frames for one tag: chunked hits, an overload, or an error.
#[derive(Clone, Debug)]
enum ReplyCase {
    Hits(Vec<Hit>, usize),
    Overloaded(u32),
    Error(String),
}

fn hits_reply() -> impl Strategy<Value = ReplyCase> {
    (pvec((0u64..=u64::MAX, any_f32_bits()), 0..24), 1usize..5).prop_map(|(pairs, chunk)| {
        let hits = pairs.into_iter().map(|(id, score)| Hit { id, score }).collect();
        ReplyCase::Hits(hits, chunk)
    })
}

fn any_reply() -> impl Strategy<Value = ReplyCase> {
    // Hits listed thrice: most replies should exercise the chunked path.
    prop_oneof![
        hits_reply(),
        hits_reply(),
        hits_reply(),
        (0u32..10_000).prop_map(ReplyCase::Overloaded),
        "[ -~]{0,40}".prop_map(ReplyCase::Error),
    ]
}

impl ReplyCase {
    /// The frames the server would send for this reply under `tag`.
    fn frames(&self, tag: u64) -> Vec<Vec<u8>> {
        match self {
            ReplyCase::Hits(hits, chunk) => encode_hits_payloads_chunked(tag, hits, *chunk),
            ReplyCase::Overloaded(ms) => {
                vec![encode_response(tag, &Response::Overloaded { retry_after_millis: *ms })]
            }
            ReplyCase::Error(msg) => {
                vec![encode_response(tag, &Response::Error(msg.clone()))]
            }
        }
    }
}

/// Runs a frame sequence through a demux, collecting completions in
/// arrival order.
fn demux_all(frames: &[Vec<u8>]) -> Vec<(u64, Response)> {
    let mut demux = ReplyDemux::new();
    let mut out = Vec::new();
    for f in frames {
        if let Some(done) = demux.push(f).expect("well-formed frame") {
            out.push(done);
        }
    }
    assert_eq!(demux.pending(), 0, "every reply must complete");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn query_requests_roundtrip(
        tag in 1u64..=u64::MAX,
        k in 0u32..=u32::MAX,
        vector in pvec(any_f32_bits(), 0..64),
    ) {
        let req = Request::Query { k, vector: vector.clone() };
        let (dtag, decoded) = decode_request(&encode_request(tag, &req)).expect("decode");
        prop_assert_eq!(dtag, tag);
        let Request::Query { k: dk, vector: dv } = decoded else {
            panic!("wrong request variant");
        };
        prop_assert_eq!(dk, k);
        prop_assert!(bits(&dv) == bits(&vector), "component bits changed on the wire");
    }

    #[test]
    fn hit_responses_roundtrip(
        tag in 0u64..=u64::MAX,
        ids in pvec(0u64..=u64::MAX, 0..40),
        score_bits in pvec(0u32..=u32::MAX, 40),
        last_bit in 0u8..2,
    ) {
        let last = last_bit == 1;
        let hits: Vec<Hit> = ids
            .iter()
            .zip(&score_bits)
            .map(|(&id, &s)| Hit { id, score: f32::from_bits(s) })
            .collect();
        let encoded = encode_response(tag, &Response::Hits { hits: hits.clone(), last });
        let (dtag, decoded) = decode_response(&encoded).expect("decode");
        prop_assert_eq!(dtag, tag);
        let Response::Hits { hits: got, last: dlast } = decoded else {
            panic!("wrong response variant");
        };
        prop_assert_eq!(dlast, last);
        prop_assert_eq!(hit_bits(&got), hit_bits(&hits));
    }

    #[test]
    fn error_overload_and_stats_responses_roundtrip(
        tag in 0u64..=u64::MAX,
        msg in "[ -~]{0,60}",
        retry in 0u32..=u32::MAX,
        depths in pvec(0usize..10_000, 0..8),
        shed in 0u64..1_000_000,
    ) {
        let err = Response::Error(msg.clone());
        prop_assert_eq!(
            decode_response(&encode_response(tag, &err)).expect("decode error"),
            (tag, err)
        );
        let over = Response::Overloaded { retry_after_millis: retry };
        prop_assert_eq!(
            decode_response(&encode_response(tag, &over)).expect("decode overloaded"),
            (tag, over)
        );
        let stats = Response::Stats(Box::new(StatsReply {
            shard_depths: depths,
            shed,
            ..StatsReply::default()
        }));
        prop_assert_eq!(
            decode_response(&encode_response(tag, &stats)).expect("decode stats"),
            (tag, stats)
        );
    }

    /// The tentpole's correctness core: take many tags' replies, deliver
    /// their frames in an **arbitrary interleaving** (chunks of one tag
    /// keep their relative order, as TCP guarantees per connection), and
    /// the demuxed per-tag results must be bit-identical to delivering
    /// each tag's frames back-to-back, sequentially.
    #[test]
    fn arbitrary_reply_interleavings_demux_identically_to_sequential(
        replies in pvec(any_reply(), 1..8),
        picks in pvec(0usize..1 << 20, 0..64),
    ) {
        // Tags 1..=n, one reply each.
        let per_tag: Vec<(u64, Vec<Vec<u8>>)> = replies
            .iter()
            .enumerate()
            .map(|(i, r)| (i as u64 + 1, r.frames(i as u64 + 1)))
            .collect();

        // Sequential delivery: tag 1's frames, then tag 2's, …
        let sequential: Vec<Vec<u8>> =
            per_tag.iter().flat_map(|(_, f)| f.iter().cloned()).collect();

        // Interleaved delivery: repeatedly pick a tag that still has
        // frames left and emit its next frame — `picks` drives the
        // choice, then a deterministic drain finishes the tail.
        let mut cursors: Vec<usize> = vec![0; per_tag.len()];
        let mut interleaved: Vec<Vec<u8>> = Vec::new();
        for pick in &picks {
            let open: Vec<usize> = (0..per_tag.len())
                .filter(|&t| cursors[t] < per_tag[t].1.len())
                .collect();
            if open.is_empty() {
                break;
            }
            let t = open[pick % open.len()];
            interleaved.push(per_tag[t].1[cursors[t]].clone());
            cursors[t] += 1;
        }
        for (t, (_, frames)) in per_tag.iter().enumerate() {
            for f in &frames[cursors[t]..] {
                interleaved.push(f.clone());
            }
        }
        prop_assert_eq!(interleaved.len(), sequential.len());

        let mut seq_results = demux_all(&sequential);
        let mut int_results = demux_all(&interleaved);
        prop_assert_eq!(seq_results.len(), per_tag.len());
        prop_assert_eq!(int_results.len(), per_tag.len());
        seq_results.sort_by_key(|(tag, _)| *tag);
        int_results.sort_by_key(|(tag, _)| *tag);
        for ((stag, sresp), (itag, iresp)) in seq_results.iter().zip(&int_results) {
            prop_assert_eq!(stag, itag);
            match (sresp, iresp) {
                (Response::Hits { hits: s, .. }, Response::Hits { hits: i, .. }) => {
                    prop_assert_eq!(hit_bits(s), hit_bits(i));
                }
                (s, i) => prop_assert_eq!(s, i),
            }
            // And both match the reply the server actually sent.
            let want = &replies[(*stag - 1) as usize];
            match (want, sresp) {
                (ReplyCase::Hits(hits, _), Response::Hits { hits: got, .. }) => {
                    prop_assert_eq!(hit_bits(got), hit_bits(hits));
                }
                (ReplyCase::Overloaded(ms), Response::Overloaded { retry_after_millis }) => {
                    prop_assert_eq!(retry_after_millis, ms);
                }
                (ReplyCase::Error(msg), Response::Error(got)) => prop_assert_eq!(got, msg),
                (want, got) => panic!("tag {stag}: sent {want:?}, demuxed {got:?}"),
            }
        }
    }

    /// Several frames written back-to-back into one byte stream come back
    /// out in order and exactly — the framing layer never over- or
    /// under-reads.
    #[test]
    fn framed_streams_preserve_message_boundaries(
        vectors in pvec(pvec(any_f32_bits(), 1..16), 1..8),
    ) {
        let payloads: Vec<Vec<u8>> = vectors
            .iter()
            .enumerate()
            .map(|(i, v)| {
                encode_request(i as u64 + 1, &Request::Query { k: 5, vector: v.clone() })
            })
            .collect();
        let mut stream = Vec::new();
        for p in &payloads {
            write_frame(&mut stream, p).expect("write");
        }
        let mut r: &[u8] = &stream;
        for p in &payloads {
            prop_assert_eq!(&read_frame(&mut r).expect("read"), p);
        }
        prop_assert!(read_frame(&mut r).is_err(), "stream must be exactly consumed");
    }

    /// Truncating a valid frame anywhere must yield an error, never a
    /// short or garbled message.
    #[test]
    fn truncated_frames_error(
        vector in pvec(any_f32_bits(), 1..16),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut stream = Vec::new();
        write_frame(&mut stream, &encode_request(7, &Request::Query { k: 3, vector }))
            .expect("write");
        let cut = 1 + ((stream.len() - 2) as f64 * cut_frac) as usize;
        let mut r: &[u8] = &stream[..cut];
        match read_frame(&mut r) {
            Err(_) => {}
            Ok(payload) => {
                // The frame survived only if the cut landed past it.
                prop_assert_eq!(cut, stream.len());
                prop_assert!(decode_request(&payload).is_ok());
            }
        }
    }
}
