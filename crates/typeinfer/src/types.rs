//! The 14-type inventory.

use serde::{Deserialize, Serialize};

/// The 14 semantic types of the paper's type-inference component
/// (`T = 14`, embedding of size `(14, H)`); every token in a cell receives
/// the cell's type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SemType {
    /// Diseases and conditions ("colon cancer", "covid-19").
    Disease,
    /// Drugs and medications ("ramucirumab").
    Drug,
    /// Chemicals and compounds.
    Chemical,
    /// Vaccines ("moderna", "covaxin").
    Vaccine,
    /// Treatments and procedures ("chemotherapy regimen").
    Treatment,
    /// Therapies ("immunotherapy").
    Therapy,
    /// Person names.
    PersonName,
    /// Places: cities, states, countries.
    Place,
    /// Organizations: universities, clubs, agencies.
    Organization,
    /// Measurements: number + unit ("20.3 months").
    Measurement,
    /// Bare numeric content.
    Numeric,
    /// Numeric ranges ("20-30").
    Range,
    /// Gaussian summaries ("1.5±0.2").
    Gaussian,
    /// Anything else.
    Text,
}

impl SemType {
    /// All types in embedding-index order.
    pub const ALL: [SemType; 14] = [
        SemType::Disease,
        SemType::Drug,
        SemType::Chemical,
        SemType::Vaccine,
        SemType::Treatment,
        SemType::Therapy,
        SemType::PersonName,
        SemType::Place,
        SemType::Organization,
        SemType::Measurement,
        SemType::Numeric,
        SemType::Range,
        SemType::Gaussian,
        SemType::Text,
    ];

    /// Number of types (the paper's `T`).
    pub const COUNT: usize = 14;

    /// Embedding index of this type.
    pub fn index(self) -> usize {
        SemType::ALL.iter().position(|&t| t == self).expect("type in inventory")
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SemType::Disease => "disease",
            SemType::Drug => "drug",
            SemType::Chemical => "chemical",
            SemType::Vaccine => "vaccine",
            SemType::Treatment => "treatment",
            SemType::Therapy => "therapy",
            SemType::PersonName => "name",
            SemType::Place => "place",
            SemType::Organization => "organization",
            SemType::Measurement => "measurement",
            SemType::Numeric => "numeric",
            SemType::Range => "range",
            SemType::Gaussian => "gaussian",
            SemType::Text => "text",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_has_exactly_fourteen_types() {
        assert_eq!(SemType::ALL.len(), SemType::COUNT);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; SemType::COUNT];
        for t in SemType::ALL {
            let i = t.index();
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = SemType::ALL.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SemType::COUNT);
    }
}
