//! Semantic type inference over cell content (paper §3.1 "Type Inference").
//!
//! The paper tags cells with one of **14 semantic types** using scispaCy for
//! biomedical entities, spaCy's `en_core_web_sm` for generic entities, custom
//! gazetteers for domain terms (vaccines, treatments, therapies, …), and
//! regexes for numeric/range/text shapes. Those NLP pipelines are not
//! available offline, so this crate implements the same *interface* — cell
//! text in, one of 14 discrete types out — with gazetteers and hand-written
//! rules. The TabBiN embedding layer only consumes the discrete type id, so
//! this substitution exercises the identical downstream code path.

mod gazetteer;
mod rules;
mod types;

pub use gazetteer::Gazetteer;
pub use rules::TypeTagger;
pub use types::SemType;
