//! Rule-based shape tagging layered over the gazetteers.
//!
//! Priority mirrors the paper's pipeline: entity hits (gazetteer) win over
//! numeric shapes, which win over the `text` fallback.

use crate::{Gazetteer, SemType};

/// The full tagger: gazetteer + shape rules.
#[derive(Clone, Debug)]
pub struct TypeTagger {
    gaz: Gazetteer,
}

impl Default for TypeTagger {
    fn default() -> Self {
        Self::new()
    }
}

impl TypeTagger {
    /// Tagger with the built-in gazetteer.
    pub fn new() -> Self {
        Self { gaz: Gazetteer::builtin() }
    }

    /// Tagger with a custom gazetteer.
    pub fn with_gazetteer(gaz: Gazetteer) -> Self {
        Self { gaz }
    }

    /// Access to the underlying gazetteer (e.g. to extend it per dataset, as
    /// the paper does with dataset-specific entity lists).
    pub fn gazetteer_mut(&mut self) -> &mut Gazetteer {
        &mut self.gaz
    }

    /// Tags a cell's rendered text with one of the 14 types.
    pub fn tag(&self, text: &str) -> SemType {
        let t = text.trim();
        if t.is_empty() {
            return SemType::Text;
        }
        if let Some(ty) = self.gaz.lookup_in(t) {
            return ty;
        }
        if is_gaussian(t) {
            return SemType::Gaussian;
        }
        if is_range(t) {
            return SemType::Range;
        }
        if let Some(rest) = leading_number(t) {
            // Number followed by a unit word => measurement; bare => numeric.
            let rest = rest.trim();
            if rest.is_empty() {
                return SemType::Numeric;
            }
            if tabbin_table::Unit::parse(rest).is_some() || rest == "%" {
                return SemType::Measurement;
            }
            return SemType::Measurement; // number + any qualifier reads as a measurement
        }
        SemType::Text
    }
}

/// `mean ± std` with optional unit.
fn is_gaussian(t: &str) -> bool {
    let Some((a, b)) = t.split_once('±') else {
        return false;
    };
    parse_front_number(a).is_some() && parse_front_number(b).is_some()
}

/// `lo - hi` (both numeric) with optional unit suffix.
fn is_range(t: &str) -> bool {
    // Try each '-' as the separator (skip a leading sign).
    let bytes: Vec<char> = t.chars().collect();
    for (i, &c) in bytes.iter().enumerate().skip(1) {
        if c == '-' || c == '–' {
            let lhs: String = bytes[..i].iter().collect();
            let rhs: String = bytes[i + 1..].iter().collect();
            if full_number(lhs.trim()) && parse_front_number(&rhs).is_some() {
                return true;
            }
        }
    }
    false
}

/// If `t` starts with a number, returns the remainder after it.
fn leading_number(t: &str) -> Option<&str> {
    let mut end = 0;
    let b = t.as_bytes();
    if end < b.len() && (b[end] == b'-' || b[end] == b'+') {
        end += 1;
    }
    let digits_start = end;
    while end < b.len() && b[end].is_ascii_digit() {
        end += 1;
    }
    if end < b.len() && b[end] == b'.' {
        end += 1;
        while end < b.len() && b[end].is_ascii_digit() {
            end += 1;
        }
    }
    if end == digits_start {
        return None;
    }
    t[..end].parse::<f64>().ok()?;
    Some(&t[end..])
}

fn full_number(t: &str) -> bool {
    !t.is_empty() && t.parse::<f64>().is_ok()
}

fn parse_front_number(t: &str) -> Option<f64> {
    let t = t.trim();
    let rest = leading_number(t)?;
    // The remainder may only contain a unit word or '%'.
    let rest = rest.trim();
    if rest.is_empty() || rest == "%" || tabbin_table::Unit::parse(rest).is_some() {
        t[..t.len() - rest.len()].trim().parse::<f64>().ok()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_colon_is_disease() {
        // "tokens corresponding to the cell 'colon' are typed as disease" —
        // our gazetteer reaches it via "colon cancer"/"cancer" family; plain
        // "colon cancer" must tag as disease.
        let tagger = TypeTagger::new();
        assert_eq!(tagger.tag("colon cancer"), SemType::Disease);
    }

    #[test]
    fn measurement_vs_numeric() {
        let tagger = TypeTagger::new();
        assert_eq!(tagger.tag("20.3 months"), SemType::Measurement);
        assert_eq!(tagger.tag("42"), SemType::Numeric);
        assert_eq!(tagger.tag("62 %"), SemType::Measurement);
    }

    #[test]
    fn range_detection() {
        let tagger = TypeTagger::new();
        assert_eq!(tagger.tag("20-30"), SemType::Range);
        assert_eq!(tagger.tag("20-30 year"), SemType::Range);
        assert_eq!(tagger.tag("4.5-5.7 months"), SemType::Range);
        // Words with hyphens are not ranges.
        assert_eq!(tagger.tag("progression-free"), SemType::Text);
    }

    #[test]
    fn gaussian_detection() {
        let tagger = TypeTagger::new();
        assert_eq!(tagger.tag("0.73±0.11"), SemType::Gaussian);
        assert_eq!(tagger.tag("1.5±0.2 months"), SemType::Gaussian);
        assert_eq!(tagger.tag("±3"), SemType::Text);
    }

    #[test]
    fn gazetteer_beats_shape() {
        let tagger = TypeTagger::new();
        // "ramucirumab 20" contains a drug term; entity wins.
        assert_eq!(tagger.tag("ramucirumab"), SemType::Drug);
    }

    #[test]
    fn fallback_is_text() {
        let tagger = TypeTagger::new();
        assert_eq!(tagger.tag("lorem ipsum dolor"), SemType::Text);
        assert_eq!(tagger.tag(""), SemType::Text);
    }

    #[test]
    fn custom_gazetteer_extension() {
        let mut tagger = TypeTagger::new();
        tagger.gazetteer_mut().extend(SemType::Vaccine, &["zeta-vax"]);
        assert_eq!(tagger.tag("zeta-vax"), SemType::Vaccine);
    }
}
