//! Gazetteers: curated term lists per semantic type.
//!
//! These stand in for the scispaCy/spaCy NER models plus the paper's "custom
//! list of named-entities, types, and noun-phrases ... such as vaccines,
//! treatments, therapies, prescriptions". Lists are intentionally the kinds
//! of vocabulary the synthetic corpora generate, so coverage is realistic
//! (high but not perfect, as with a real NER model).

use crate::SemType;
use std::collections::HashMap;

/// A term → type dictionary with multi-word support.
#[derive(Clone, Debug, Default)]
pub struct Gazetteer {
    terms: HashMap<String, SemType>,
}

impl Gazetteer {
    /// An empty gazetteer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in gazetteer covering the reproduction corpora's domains
    /// (biomedical, government statistics, web entities).
    pub fn builtin() -> Self {
        let mut g = Self::new();
        g.extend(SemType::Disease, DISEASES);
        g.extend(SemType::Drug, DRUGS);
        g.extend(SemType::Chemical, CHEMICALS);
        g.extend(SemType::Vaccine, VACCINES);
        g.extend(SemType::Treatment, TREATMENTS);
        g.extend(SemType::Therapy, THERAPIES);
        g.extend(SemType::PersonName, NAMES);
        g.extend(SemType::Place, PLACES);
        g.extend(SemType::Organization, ORGS);
        g
    }

    /// Adds terms mapping to `ty` (lowercased).
    pub fn extend(&mut self, ty: SemType, terms: &[&str]) {
        for t in terms {
            self.terms.insert(t.to_ascii_lowercase(), ty);
        }
    }

    /// Exact lookup of a (lowercased) term.
    pub fn lookup(&self, term: &str) -> Option<SemType> {
        self.terms.get(&term.to_ascii_lowercase()).copied()
    }

    /// Looks up the longest matching term inside `text`: first the whole
    /// string, then each word. Returns the first hit by priority of whole
    /// phrase over single words.
    pub fn lookup_in(&self, text: &str) -> Option<SemType> {
        let lower = text.to_ascii_lowercase();
        let trimmed = lower.trim();
        if let Some(t) = self.terms.get(trimmed) {
            return Some(*t);
        }
        for word in trimmed.split_whitespace() {
            let w = word.trim_matches(|c: char| !c.is_alphanumeric());
            if let Some(t) = self.terms.get(w) {
                return Some(*t);
            }
        }
        None
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the gazetteer is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

const DISEASES: &[&str] = &[
    "cancer",
    "carcinoma",
    "adenocarcinoma",
    "melanoma",
    "lymphoma",
    "leukemia",
    "tumor",
    "colorectal cancer",
    "colon cancer",
    "rectal cancer",
    "breast cancer",
    "lung cancer",
    "covid-19",
    "covid",
    "sars-cov-2",
    "influenza",
    "pneumonia",
    "sepsis",
    "diabetes",
    "hypertension",
    "asthma",
    "arthritis",
    "hepatitis",
    "metastasis",
    "polyp",
    "anemia",
    "neutropenia",
    "mucositis",
    "diarrhea",
    "fatigue",
    "nausea",
    "colitis",
];

const DRUGS: &[&str] = &[
    "ramucirumab",
    "bevacizumab",
    "cetuximab",
    "panitumumab",
    "regorafenib",
    "aflibercept",
    "fluorouracil",
    "capecitabine",
    "oxaliplatin",
    "irinotecan",
    "leucovorin",
    "trifluridine",
    "pembrolizumab",
    "nivolumab",
    "ipilimumab",
    "aspirin",
    "metformin",
    "remdesivir",
    "dexamethasone",
    "paxlovid",
    "molnupiravir",
    "heparin",
    "warfarin",
    "folfox",
    "folfiri",
];

const CHEMICALS: &[&str] = &[
    "fluoropyrimidine",
    "platinum",
    "oxalate",
    "glucose",
    "sodium",
    "potassium",
    "calcium",
    "creatinine",
    "bilirubin",
    "albumin",
    "hemoglobin",
    "cholesterol",
    "nitrogen",
    "oxygen",
    "carbon",
    "ethanol",
    "methanol",
    "acetate",
];

const VACCINES: &[&str] = &[
    "moderna",
    "covaxin",
    "pfizer",
    "biontech",
    "astrazeneca",
    "sputnik",
    "sinovac",
    "janssen",
    "novavax",
    "mrna-1273",
    "bnt162b2",
    "covishield",
    "booster",
];

const TREATMENTS: &[&str] = &[
    "chemotherapy",
    "surgery",
    "resection",
    "colectomy",
    "colonoscopy",
    "screening",
    "transplant",
    "dialysis",
    "intubation",
    "ventilation",
    "infusion",
    "prescription",
    "regimen",
    "dose escalation",
    "maintenance",
];

const THERAPIES: &[&str] = &[
    "immunotherapy",
    "radiotherapy",
    "targeted therapy",
    "hormone therapy",
    "gene therapy",
    "combination therapy",
    "monotherapy",
    "adjuvant therapy",
    "neoadjuvant therapy",
    "palliative care",
    "therapy",
];

const NAMES: &[&str] = &[
    "sam", "ava", "kim", "paul", "maria", "john", "wei", "fatima", "carlos", "yuki", "smith",
    "johnson", "garcia", "chen", "patel", "mueller", "kowalski", "rossi",
];

const PLACES: &[&str] = &[
    // Cities (the spaCy GPE tagger recognizes these reliably).
    "tallahassee",
    "tampa",
    "miami",
    "orlando",
    "atlanta",
    "boston",
    "chicago",
    "seattle",
    "houston",
    "denver",
    "portland",
    "austin",
    "phoenix",
    "detroit",
    "memphis",
    "omaha",
    "tucson",
    "raleigh",
    "usa",
    "london",
    "paris",
    "tokyo",
    "berlin",
    "madrid",
    "rome",
    // US states — basic NER coverage.
    "florida",
    "texas",
    "california",
    "georgia",
    "ohio",
    "alabama",
    "nevada",
    "oregon",
    "michigan",
    "virginia",
    "colorado",
    "arizona",
    "illinois",
    "washington",
    "montana",
    "kansas",
    "utah",
    "iowa",
];

const ORGS: &[&str] = &[
    "university",
    "college",
    "institute",
    "hospital",
    "clinic",
    "fbi",
    "census bureau",
    "fc",
    "united",
    "city fc",
    "rovers",
    "athletic",
    "ministry",
    "department",
    "agency",
    "pubmed",
    "who",
    "cdc",
    "nih",
    "fda",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_paper_examples() {
        let g = Gazetteer::builtin();
        assert_eq!(g.lookup("ramucirumab"), Some(SemType::Drug));
        assert_eq!(g.lookup("colon cancer"), Some(SemType::Disease));
        assert_eq!(g.lookup("moderna"), Some(SemType::Vaccine));
        assert_eq!(g.lookup("immunotherapy"), Some(SemType::Therapy));
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let g = Gazetteer::builtin();
        assert_eq!(g.lookup("Ramucirumab"), Some(SemType::Drug));
        assert_eq!(g.lookup("MODERNA"), Some(SemType::Vaccine));
    }

    #[test]
    fn lookup_in_matches_phrases_then_words() {
        let g = Gazetteer::builtin();
        assert_eq!(g.lookup_in("metastatic colon cancer"), Some(SemType::Disease));
        assert_eq!(g.lookup_in("treated with ramucirumab weekly"), Some(SemType::Drug));
        assert_eq!(g.lookup_in("nothing matches here qqq"), None);
    }

    #[test]
    fn custom_extension() {
        let mut g = Gazetteer::new();
        g.extend(SemType::Organization, &["acme corp"]);
        assert_eq!(g.lookup("ACME Corp"), Some(SemType::Organization));
        assert_eq!(g.len(), 1);
    }
}
