//! Sequence encoding: from table segments to embedding-layer inputs.
//!
//! This reproduces Figure 3 of the paper: every token carries the inputs of
//! all six embedding components — vocabulary id (numbers appear as `[VAL]`),
//! numeric payload, in-cell position, in-table bi-dimensional + nested
//! coordinates, inferred semantic type, and the 8-bit unit/nesting feature
//! vector — plus the `(row, col)` address used to build the visibility
//! matrix. `[CLS]` starts each row/column and `[SEP]` separates cells
//! (§3.3).

use crate::config::{ModelConfig, SegmentKind};
use tabbin_table::coords::assign_coordinates;
use tabbin_table::visibility::{visibility_matrix, SeqItem};
use tabbin_table::{CellValue, MetaNode, MetaTree, Table};
use tabbin_tokenizer::{Piece, SpecialToken, Tokenizer};
use tabbin_typeinfer::{SemType, TypeTagger};

/// Sentinel `cell_id` for special tokens that belong to no cell.
pub const NO_CELL: usize = usize::MAX;

/// One encoded token with all embedding-layer inputs.
#[derive(Clone, Debug, PartialEq)]
pub struct EncodedToken {
    /// Vocabulary id (`[VAL]` for numbers).
    pub vocab_id: u32,
    /// Numeric payload feeding `E_num`; `None` for non-numeric tokens.
    pub value: Option<f64>,
    /// In-cell token index feeding `E_cpos` (clamped to `max_cell_tokens`).
    pub cell_pos: usize,
    /// The six coordinate indices feeding `E_tpos`:
    /// `(x_vr, x_vc, x_hr, x_hc, x_nr, x_nc)`.
    pub tpos: [u16; 6],
    /// Inferred semantic type index feeding `E_type`.
    pub sem_type: usize,
    /// Unit/nesting bits feeding `E_fmt`.
    pub feat_bits: [bool; 8],
    /// Visibility-matrix row address.
    pub row: u32,
    /// Visibility-matrix column address.
    pub col: u32,
    /// Whether this is a `[CLS]`/`[SEP]` token (globally visible, excluded
    /// from masking and pooling).
    pub special: bool,
    /// Index of the owning cell within the sequence ([`NO_CELL`] for special
    /// tokens); the Cell-level Cloze objective masks whole cells by this id.
    pub cell_id: usize,
}

/// An encoded segment sequence.
#[derive(Clone, Debug, Default)]
pub struct EncodedSequence {
    /// The tokens in order.
    pub tokens: Vec<EncodedToken>,
    /// Number of distinct cells represented.
    pub n_cells: usize,
}

impl EncodedSequence {
    /// Sequence length.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Builds the binary visibility matrix for this sequence.
    pub fn visibility(&self) -> Vec<Vec<bool>> {
        let items: Vec<SeqItem> = self
            .tokens
            .iter()
            .map(|t| if t.special { SeqItem::global() } else { SeqItem::cell(t.row, t.col) })
            .collect();
        visibility_matrix(&items)
    }

    /// Token indices (not ids) of each cell, keyed by `cell_id`.
    pub fn cell_token_indices(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.n_cells];
        for (i, t) in self.tokens.iter().enumerate() {
            if t.cell_id != NO_CELL {
                out[t.cell_id].push(i);
            }
        }
        out
    }
}

/// Encodes one segment of a table.
pub fn encode_segment(
    table: &Table,
    kind: SegmentKind,
    tok: &Tokenizer,
    tagger: &TypeTagger,
    cfg: &ModelConfig,
) -> EncodedSequence {
    match kind {
        SegmentKind::DataRow => encode_data(table, /*row_major=*/ true, tok, tagger, cfg),
        SegmentKind::DataColumn => encode_data(table, /*row_major=*/ false, tok, tagger, cfg),
        SegmentKind::Hmd => {
            encode_metadata(&table.hmd, /*horizontal=*/ true, tok, tagger, cfg)
        }
        SegmentKind::Vmd => {
            encode_metadata(&table.vmd, /*horizontal=*/ false, tok, tagger, cfg)
        }
    }
}

/// Encodes a single data column `j` — the unit the TabBiN-column model embeds
/// for column clustering.
pub fn encode_column(
    table: &Table,
    j: usize,
    tok: &Tokenizer,
    tagger: &TypeTagger,
    cfg: &ModelConfig,
) -> EncodedSequence {
    let coords = assign_coordinates(table);
    let mut b = SeqBuilder::new(tok, tagger, cfg);
    b.cls(0, j as u32);
    for i in 0..table.n_rows() {
        let coord = coords.data_coord(i, j).cloned().unwrap_or_default();
        b.cell(table.data.get(i, j), coord.tpos_indices(), i as u32, j as u32);
        b.sep(i as u32, j as u32);
    }
    b.finish()
}

/// Encodes a single data row `i` — the tuple unit for entity matching.
pub fn encode_row(
    table: &Table,
    i: usize,
    tok: &Tokenizer,
    tagger: &TypeTagger,
    cfg: &ModelConfig,
) -> EncodedSequence {
    let coords = assign_coordinates(table);
    let mut b = SeqBuilder::new(tok, tagger, cfg);
    b.cls(i as u32, 0);
    for j in 0..table.n_cols() {
        let coord = coords.data_coord(i, j).cloned().unwrap_or_default();
        b.cell(table.data.get(i, j), coord.tpos_indices(), i as u32, j as u32);
        b.sep(i as u32, j as u32);
    }
    b.finish()
}

/// Encodes free text (an entity string, a caption) as one pseudo-cell.
pub fn encode_text(
    text: &str,
    tok: &Tokenizer,
    tagger: &TypeTagger,
    cfg: &ModelConfig,
) -> EncodedSequence {
    let mut b = SeqBuilder::new(tok, tagger, cfg);
    b.cls(0, 0);
    b.cell(&CellValue::text(text), [0; 6], 0, 0);
    b.finish()
}

fn encode_data(
    table: &Table,
    row_major: bool,
    tok: &Tokenizer,
    tagger: &TypeTagger,
    cfg: &ModelConfig,
) -> EncodedSequence {
    let coords = assign_coordinates(table);
    let mut b = SeqBuilder::new(tok, tagger, cfg);
    let (outer, inner) =
        if row_major { (table.n_rows(), table.n_cols()) } else { (table.n_cols(), table.n_rows()) };
    for a in 0..outer {
        let (r0, c0) = if row_major { (a, 0) } else { (0, a) };
        b.cls(r0 as u32, c0 as u32);
        for bidx in 0..inner {
            let (i, j) = if row_major { (a, bidx) } else { (bidx, a) };
            let coord = coords.data_coord(i, j).cloned().unwrap_or_default();
            b.cell(table.data.get(i, j), coord.tpos_indices(), i as u32, j as u32);
            b.sep(i as u32, j as u32);
        }
    }
    b.finish()
}

fn encode_metadata(
    tree: &MetaTree,
    horizontal: bool,
    tok: &Tokenizer,
    tagger: &TypeTagger,
    cfg: &ModelConfig,
) -> EncodedSequence {
    let mut b = SeqBuilder::new(tok, tagger, cfg);
    b.cls(0, 0);
    let mut nodes = Vec::new();
    let mut path = Vec::new();
    let mut leaf_counter = 0usize;
    for (i, root) in tree.roots.iter().enumerate() {
        path.push(i as u16 + 1);
        collect_meta(root, &mut path, 0, &mut leaf_counter, &mut nodes);
        path.pop();
    }
    for (label, npath, depth, first_leaf) in nodes {
        // Horizontal metadata lives in rows (depth = which header row) and
        // spans columns; vertical metadata transposes that.
        let (row, col) = if horizontal {
            (depth as u32, first_leaf as u32)
        } else {
            (first_leaf as u32, depth as u32)
        };
        let (first, last) = match npath.as_slice() {
            [] => (0, 0),
            [only] => (*only, *only),
            [f, .., l] => (*f, *l),
        };
        // Metadata's own axis carries the tree path; the cross axis is empty.
        let tpos: [u16; 6] =
            if horizontal { [0, 0, first, last, 0, 0] } else { [first, last, 0, 0, 0, 0] };
        b.cell(&CellValue::text(label.clone()), tpos, row, col);
        b.sep(row, col);
    }
    b.finish()
}

#[allow(clippy::type_complexity)]
fn collect_meta(
    node: &MetaNode,
    path: &mut Vec<u16>,
    depth: usize,
    leaf_counter: &mut usize,
    out: &mut Vec<(String, Vec<u16>, usize, usize)>,
) {
    let first_leaf = *leaf_counter;
    out.push((node.label.clone(), path.clone(), depth, first_leaf));
    if node.children.is_empty() {
        *leaf_counter += 1;
        return;
    }
    for (i, child) in node.children.iter().enumerate() {
        path.push(i as u16 + 1);
        collect_meta(child, path, depth + 1, leaf_counter, out);
        path.pop();
    }
}

/// Maps a structured cell value to its semantic type, consulting the tagger
/// for text content (structured values carry their shape directly).
pub fn cell_sem_type(cell: &CellValue, tagger: &TypeTagger) -> SemType {
    match cell {
        CellValue::Empty => SemType::Text,
        CellValue::Text(t) => tagger.tag(t),
        CellValue::Number { unit, .. } => {
            if unit.is_some() {
                SemType::Measurement
            } else {
                SemType::Numeric
            }
        }
        CellValue::Range { .. } => SemType::Range,
        CellValue::Gaussian { .. } => SemType::Gaussian,
        CellValue::Nested(_) => SemType::Text,
    }
}

struct SeqBuilder<'a> {
    tok: &'a Tokenizer,
    tagger: &'a TypeTagger,
    cfg: &'a ModelConfig,
    tokens: Vec<EncodedToken>,
    n_cells: usize,
}

impl<'a> SeqBuilder<'a> {
    fn new(tok: &'a Tokenizer, tagger: &'a TypeTagger, cfg: &'a ModelConfig) -> Self {
        Self { tok, tagger, cfg, tokens: Vec::new(), n_cells: 0 }
    }

    fn full(&self) -> bool {
        self.tokens.len() >= self.cfg.max_seq
    }

    fn special(&mut self, s: SpecialToken, row: u32, col: u32) {
        if self.full() {
            return;
        }
        self.tokens.push(EncodedToken {
            vocab_id: s.id(),
            value: None,
            cell_pos: 0,
            tpos: [0; 6],
            sem_type: SemType::Text.index(),
            feat_bits: [false; 8],
            row,
            col,
            special: true,
            cell_id: NO_CELL,
        });
    }

    fn cls(&mut self, row: u32, col: u32) {
        self.special(SpecialToken::Cls, row, col);
    }

    fn sep(&mut self, row: u32, col: u32) {
        self.special(SpecialToken::Sep, row, col);
    }

    /// Appends all tokens of one cell (recursing into nested tables).
    fn cell(&mut self, cell: &CellValue, tpos: [u16; 6], row: u32, col: u32) {
        if self.full() {
            return;
        }
        let cell_id = self.n_cells;
        self.n_cells += 1;
        let sem = cell_sem_type(cell, self.tagger).index();
        let bits = cell.feature_bits();
        match cell {
            CellValue::Nested(inner) => {
                // Flatten the nested table: header labels on nested row 1,
                // data cells below, all inheriting the host coordinate and
                // visibility address (paper: nested position embedding with
                // in-nested (x, y) starting at 1).
                let mut pos = 0usize;
                for (c, label) in inner.hmd.leaf_labels().iter().enumerate() {
                    let mut t = tpos;
                    t[4] = 1;
                    t[5] = c as u16 + 1;
                    self.push_text_tokens(label, t, row, col, cell_id, sem, bits, &mut pos);
                }
                for (r, c, v) in inner.data.iter_indexed() {
                    let mut t = tpos;
                    t[4] = r as u16 + 2;
                    t[5] = c as u16 + 1;
                    let inner_sem = cell_sem_type(v, self.tagger).index();
                    let mut inner_bits = v.feature_bits();
                    inner_bits[7] = true; // still inside a nested cell
                    self.push_value_tokens(
                        v, t, row, col, cell_id, inner_sem, inner_bits, &mut pos,
                    );
                }
            }
            other => {
                let mut pos = 0usize;
                self.push_value_tokens(other, tpos, row, col, cell_id, sem, bits, &mut pos);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_value_tokens(
        &mut self,
        cell: &CellValue,
        tpos: [u16; 6],
        row: u32,
        col: u32,
        cell_id: usize,
        sem: usize,
        bits: [bool; 8],
        pos: &mut usize,
    ) {
        let text = cell.render();
        self.push_text_tokens(&text, tpos, row, col, cell_id, sem, bits, pos);
    }

    #[allow(clippy::too_many_arguments)]
    fn push_text_tokens(
        &mut self,
        text: &str,
        tpos: [u16; 6],
        row: u32,
        col: u32,
        cell_id: usize,
        sem: usize,
        bits: [bool; 8],
        pos: &mut usize,
    ) {
        for piece in self.tok.encode(text) {
            if self.full() || *pos >= self.cfg.max_cell_tokens {
                return;
            }
            let (vocab_id, value) = match piece {
                Piece::Word(id) => (id, None),
                Piece::Value(v) => (SpecialToken::Val.id(), Some(v)),
            };
            let clamp = |x: u16| x.min(self.cfg.max_coord as u16 - 1);
            self.tokens.push(EncodedToken {
                vocab_id,
                value,
                cell_pos: *pos,
                tpos: [
                    clamp(tpos[0]),
                    clamp(tpos[1]),
                    clamp(tpos[2]),
                    clamp(tpos[3]),
                    clamp(tpos[4]),
                    clamp(tpos[5]),
                ],
                sem_type: sem,
                feat_bits: bits,
                row,
                col,
                special: false,
                cell_id,
            });
            *pos += 1;
        }
    }

    fn finish(self) -> EncodedSequence {
        EncodedSequence { tokens: self.tokens, n_cells: self.n_cells }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabbin_table::samples::{figure1_table, table1_sample, table2_relational};

    fn fixtures() -> (Tokenizer, TypeTagger, ModelConfig) {
        let texts = [
            "treatment cancer type age outcome overall survival ramucirumab colon rectal",
            "name job engineer lawyer scientist sam ava kim months efficacy",
        ];
        (
            Tokenizer::train(texts.iter().copied(), 1000, 1),
            TypeTagger::new(),
            ModelConfig::default(),
        )
    }

    #[test]
    fn relational_row_encoding_has_cls_and_sep() {
        let (tok, tagger, cfg) = fixtures();
        let t = table2_relational();
        let seq = encode_segment(&t, SegmentKind::DataRow, &tok, &tagger, &cfg);
        assert!(!seq.is_empty());
        assert_eq!(seq.tokens[0].vocab_id, SpecialToken::Cls.id());
        let seps = seq.tokens.iter().filter(|t| t.vocab_id == SpecialToken::Sep.id()).count();
        assert_eq!(seps, 9, "one [SEP] per cell");
        // 3 rows, 3 cells each.
        assert_eq!(seq.n_cells, 9);
    }

    #[test]
    fn numbers_become_val_with_payload() {
        let (tok, tagger, cfg) = fixtures();
        let t = table2_relational();
        let seq = encode_segment(&t, SegmentKind::DataRow, &tok, &tagger, &cfg);
        let vals: Vec<&EncodedToken> =
            seq.tokens.iter().filter(|t| t.vocab_id == SpecialToken::Val.id()).collect();
        assert_eq!(vals.len(), 3, "three Age numbers");
        assert_eq!(vals[0].value, Some(28.0));
    }

    #[test]
    fn column_encoding_addresses_one_column() {
        let (tok, tagger, cfg) = fixtures();
        let t = table2_relational();
        let seq = encode_column(&t, 2, &tok, &tagger, &cfg);
        for t in seq.tokens.iter().filter(|t| !t.special) {
            assert_eq!(t.col, 2);
        }
        assert_eq!(seq.n_cells, 3);
    }

    #[test]
    fn coordinates_flow_into_tpos() {
        let (tok, tagger, cfg) = fixtures();
        let t = figure1_table();
        let seq = encode_segment(&t, SegmentKind::DataRow, &tok, &tagger, &cfg);
        // Find a non-special token of the second row (vertical path <1,2>).
        let tok2 = seq.tokens.iter().find(|t| !t.special && t.row == 1).unwrap();
        assert_eq!(tok2.tpos[0], 1);
        assert_eq!(tok2.tpos[1], 2);
    }

    #[test]
    fn nested_tokens_carry_nested_coordinates_and_bit() {
        let (tok, tagger, cfg) = fixtures();
        let t = table1_sample();
        let seq = encode_segment(&t, SegmentKind::DataRow, &tok, &tagger, &cfg);
        let nested: Vec<&EncodedToken> = seq.tokens.iter().filter(|t| t.tpos[4] > 0).collect();
        assert!(!nested.is_empty(), "nested tokens present");
        // Header labels at nested row 1, data at row >= 2.
        assert!(nested.iter().any(|t| t.tpos[4] == 1));
        assert!(nested.iter().any(|t| t.tpos[4] >= 2));
        for t in &nested {
            assert!(t.feat_bits[7], "nesting bit set");
        }
    }

    #[test]
    fn hmd_encoding_walks_hierarchy() {
        let (tok, tagger, cfg) = fixtures();
        let t = figure1_table();
        let seq = encode_segment(&t, SegmentKind::Hmd, &tok, &tagger, &cfg);
        // 5 HMD labels: 2 roots + 3 leaves.
        assert_eq!(seq.n_cells, 5);
        // Horizontal metadata fills the hpos slots, not the vpos slots.
        let non_special: Vec<&EncodedToken> = seq.tokens.iter().filter(|t| !t.special).collect();
        assert!(non_special.iter().all(|t| t.tpos[0] == 0 && t.tpos[1] == 0));
        assert!(non_special.iter().any(|t| t.tpos[2] > 0));
    }

    #[test]
    fn vmd_encoding_transposes_addresses() {
        let (tok, tagger, cfg) = fixtures();
        let t = figure1_table();
        let seq = encode_segment(&t, SegmentKind::Vmd, &tok, &tagger, &cfg);
        assert_eq!(seq.n_cells, 3, "1 root + 2 leaves");
        let non_special: Vec<&EncodedToken> = seq.tokens.iter().filter(|t| !t.special).collect();
        assert!(non_special.iter().any(|t| t.tpos[0] > 0));
        assert!(non_special.iter().all(|t| t.tpos[2] == 0 && t.tpos[3] == 0));
    }

    #[test]
    fn sequences_respect_max_seq() {
        let (tok, tagger, _) = fixtures();
        let cfg = ModelConfig { max_seq: 16, ..ModelConfig::default() };
        let t = figure1_table();
        let seq = encode_segment(&t, SegmentKind::DataRow, &tok, &tagger, &cfg);
        assert!(seq.len() <= 16);
    }

    #[test]
    fn cell_tokens_respect_max_cell_tokens() {
        let (tok, tagger, _) = fixtures();
        let cfg = ModelConfig { max_cell_tokens: 2, ..ModelConfig::default() };
        let long = Table::builder("t")
            .hmd_flat(&["x"])
            .row(vec![CellValue::text("one two three four five six")])
            .build();
        let seq = encode_segment(&long, SegmentKind::DataRow, &tok, &tagger, &cfg);
        let words = seq.tokens.iter().filter(|t| !t.special).count();
        assert!(words <= 2, "got {words} tokens");
    }

    #[test]
    fn visibility_matches_addresses() {
        let (tok, tagger, cfg) = fixtures();
        let t = table2_relational();
        let seq = encode_segment(&t, SegmentKind::DataRow, &tok, &tagger, &cfg);
        let vis = seq.visibility();
        assert_eq!(vis.len(), seq.len());
        // Specials are globally visible.
        assert!(vis[0].iter().all(|&b| b));
    }

    #[test]
    fn cell_token_indices_partition_tokens() {
        let (tok, tagger, cfg) = fixtures();
        let t = table2_relational();
        let seq = encode_segment(&t, SegmentKind::DataRow, &tok, &tagger, &cfg);
        let cells = seq.cell_token_indices();
        let total: usize = cells.iter().map(Vec::len).sum();
        let non_special = seq.tokens.iter().filter(|t| !t.special).count();
        assert_eq!(total, non_special);
    }

    #[test]
    fn text_encoding_is_single_cell() {
        let (tok, tagger, cfg) = fixtures();
        let seq = encode_text("metastatic colon cancer", &tok, &tagger, &cfg);
        assert_eq!(seq.n_cells, 1);
        assert!(seq.tokens[0].special);
    }
}
