//! Binary entity matching head (Table 9).
//!
//! To compare against DITTO the paper adds "a linear layer followed by a
//! softmax layer on top of our TabBiN transformer layers" so TabBiN can
//! perform binary match/mismatch classification over entity pairs. This
//! module implements that head over pair feature vectors
//! `[a ⊕ b ⊕ |a−b| ⊕ a⊙b]` built from any embedding backend, so both TabBiN
//! and the baselines can be evaluated with the same protocol.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tabbin_tensor::nn::Linear;
use tabbin_tensor::optim::Adam;
use tabbin_tensor::{Graph, ParamStore, Tensor};

/// A labeled training/evaluation pair of entity embeddings.
#[derive(Clone, Debug)]
pub struct EmbeddedPair {
    /// First entity embedding.
    pub a: Vec<f32>,
    /// Second entity embedding.
    pub b: Vec<f32>,
    /// Ground-truth match label.
    pub matched: bool,
}

/// Training options for the matcher head.
#[derive(Clone, Copy, Debug)]
pub struct MatcherOptions {
    /// Training epochs over the pair set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Mini-batch size.
    pub batch: usize,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl Default for MatcherOptions {
    fn default() -> Self {
        Self { epochs: 30, lr: 5e-3, batch: 16, seed: 23 }
    }
}

/// Linear + softmax binary classifier over pair features.
#[derive(Debug)]
pub struct EntityMatcher {
    store: ParamStore,
    hidden: Linear,
    head: Linear,
    dim: usize,
}

impl EntityMatcher {
    /// Builds a matcher for `dim`-dimensional entity embeddings.
    pub fn new(dim: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let hidden = Linear::new(&mut store, "match.hidden", 4 * dim, 2 * dim, seed ^ 0x7a);
        let head = Linear::new(&mut store, "match.head", 2 * dim, 2, seed ^ 0x7b);
        Self { store, hidden, head, dim }
    }

    /// Pair feature vector `[a ⊕ b ⊕ |a−b| ⊕ a⊙b]`.
    fn features(&self, a: &[f32], b: &[f32]) -> Vec<f32> {
        assert_eq!(a.len(), self.dim, "pair dimension mismatch");
        assert_eq!(b.len(), self.dim, "pair dimension mismatch");
        let mut f = Vec::with_capacity(4 * self.dim);
        f.extend_from_slice(a);
        f.extend_from_slice(b);
        f.extend(a.iter().zip(b).map(|(x, y)| (x - y).abs()));
        f.extend(a.iter().zip(b).map(|(x, y)| x * y));
        f
    }

    /// Trains the head; returns the per-epoch mean loss.
    pub fn train(&mut self, pairs: &[EmbeddedPair], opts: &MatcherOptions) -> Vec<f32> {
        assert!(!pairs.is_empty(), "cannot train on an empty pair set");
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut opt = Adam::new(opts.lr);
        let mut curve = Vec::with_capacity(opts.epochs);
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        for _ in 0..opts.epochs {
            // Fisher-Yates shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            let mut total = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(opts.batch) {
                let n = chunk.len();
                let mut x = Tensor::zeros(&[n, 4 * self.dim]);
                let mut targets = Vec::with_capacity(n);
                for (r, &idx) in chunk.iter().enumerate() {
                    let p = &pairs[idx];
                    x.row_mut(r).copy_from_slice(&self.features(&p.a, &p.b));
                    targets.push(if p.matched { 1i64 } else { 0 });
                }
                let mut g = Graph::new();
                let xn = g.input(x);
                let h = self.hidden.forward(&mut g, &self.store, xn);
                let act = g.relu(h);
                let logits = self.head.forward(&mut g, &self.store, act);
                let loss = g.cross_entropy_rows(logits, &targets);
                total += g.value(loss).data()[0];
                batches += 1;
                g.backward(loss);
                g.accumulate_grads(&mut self.store);
                opt.step(&mut self.store);
                self.store.zero_grads();
            }
            curve.push(total / batches.max(1) as f32);
        }
        curve
    }

    /// Match probability for a pair.
    pub fn predict_proba(&self, a: &[f32], b: &[f32]) -> f32 {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(self.features(a, b), &[1, 4 * self.dim]));
        let h = self.hidden.forward(&mut g, &self.store, x);
        let act = g.relu(h);
        let logits = self.head.forward(&mut g, &self.store, act);
        let p = g.softmax_rows(logits);
        g.value(p).at(0, 1)
    }

    /// Hard match decision at threshold 0.5.
    pub fn predict(&self, a: &[f32], b: &[f32]) -> bool {
        self.predict_proba(a, b) >= 0.5
    }

    /// F1 score (%) of the matcher over labeled pairs, as Table 9 reports.
    pub fn f1_percent(&self, pairs: &[EmbeddedPair]) -> f64 {
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        for p in pairs {
            let pred = self.predict(&p.a, &p.b);
            match (pred, p.matched) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => {}
            }
        }
        if tp == 0 {
            return 0.0;
        }
        let precision = tp as f64 / (tp + fp) as f64;
        let recall = tp as f64 / (tp + fn_) as f64;
        100.0 * 2.0 * precision * recall / (precision + recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic separable pairs: matched pairs are near-duplicates, negative
    /// pairs are unrelated directions.
    fn toy_pairs(n: usize, dim: usize, seed: u64) -> Vec<EmbeddedPair> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(2 * n);
        for _ in 0..n {
            let base: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0..1.0)).collect();
            let close: Vec<f32> = base.iter().map(|v| v + rng.random_range(-0.05..0.05)).collect();
            out.push(EmbeddedPair { a: base.clone(), b: close, matched: true });
            let far: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0..1.0)).collect();
            out.push(EmbeddedPair { a: base, b: far, matched: false });
        }
        out
    }

    #[test]
    fn learns_separable_pairs() {
        let train = toy_pairs(60, 8, 1);
        let test = toy_pairs(30, 8, 2);
        let mut m = EntityMatcher::new(8, 3);
        let curve = m.train(&train, &MatcherOptions { epochs: 25, ..Default::default() });
        assert!(curve.last().unwrap() < &curve[0], "loss should fall");
        let f1 = m.f1_percent(&test);
        assert!(f1 > 80.0, "F1 too low: {f1}");
    }

    #[test]
    fn predict_proba_in_unit_interval() {
        let m = EntityMatcher::new(4, 5);
        let p = m.predict_proba(&[0.1, 0.2, 0.3, 0.4], &[0.1, 0.2, 0.3, 0.4]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_dimension() {
        let m = EntityMatcher::new(4, 5);
        let _ = m.predict(&[0.0; 3], &[0.0; 4]);
    }

    #[test]
    fn f1_of_perfect_predictions() {
        // With no training the head is near-random; craft a degenerate test
        // where every pair is predicted positive by construction: train
        // quickly on all-positive data.
        let pairs: Vec<EmbeddedPair> = (0..10)
            .map(|i| EmbeddedPair { a: vec![i as f32; 4], b: vec![i as f32; 4], matched: true })
            .collect();
        let mut m = EntityMatcher::new(4, 7);
        m.train(&pairs, &MatcherOptions { epochs: 10, ..Default::default() });
        let f1 = m.f1_percent(&pairs);
        assert!(f1 > 99.0, "all-positive training set should be learnable: {f1}");
    }
}
