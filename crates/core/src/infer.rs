//! Tape-free inference kernels.
//!
//! [`crate::model::TabBiNModel::embed`] runs the forward pass on the autograd
//! tape, which exists to support backpropagation: every op allocates an
//! output tensor onto the tape, parameters are copied into the arena, layer
//! norm caches its normalized activations, and so on. Inference needs none
//! of that. This module reimplements the forward pass as fused loops over
//! raw `f32` slices:
//!
//! * parameters are **read in place** from the [`ParamStore`] — zero copies;
//! * the six embedding components are summed in a single pass per token;
//! * attention runs const-width specialized head kernels: score rows
//!   accumulate as wide SAXPYs against a transposed K, the softmax `exp` is
//!   an AVX2 polynomial where available, and the visibility mask seeds the
//!   score rows branch-free;
//! * every intermediate lives in an [`InferScratch`] buffer that is grown
//!   — never reallocated — between sequences.
//!
//! The result agrees with the tape path elementwise to ~1e-6 (float
//! summation order differs slightly; a property test pins the 1e-5 bound)
//! at a fraction of the cost, which is what makes the batched embedding
//! pipeline beat the per-table loop even on a single core.

use crate::encoding::EncodedSequence;
use crate::model::TabBiNModel;
use tabbin_table::NumericFeatures;
use tabbin_tensor::ops::gelu_fwd;
use tabbin_tensor::{ParamStore, Tensor};

/// Additive mask value for invisible pairs (matches `nn::additive_mask`).
const MASK_NEG: f32 = -1e9;

/// Reusable buffers for the no-tape forward pass. Steady-state embedding
/// performs no heap allocation beyond the returned vectors.
#[derive(Default)]
pub struct InferScratch {
    x: Vec<f32>,
    a: Vec<f32>,
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    kt: Vec<f32>,
    scores: Vec<f32>,
    ff: Vec<f32>,
    mask: Vec<f32>,
}

impl InferScratch {
    /// Fresh, empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Grows `buf` to at least `len` and returns the `len`-prefix. Contents are
/// unspecified — every kernel below fully overwrites its output — so
/// steady-state reuse skips the memset a `clear`+`resize` would pay.
fn grab(buf: &mut Vec<f32>, len: usize) -> &mut [f32] {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
    &mut buf[..len]
}

/// Branch-free polynomial `exp` (Cephes-style `expf`, ≤2 ulp over the
/// softmax range). Unlike the libm call it inlines and auto-vectorizes, so
/// a whole attention row's worth of exponentials runs in SIMD lanes.
/// Arguments at or below the f32 underflow cutoff return exactly 0.0 — the
/// same value libm produces for masked (-1e9) attention scores.
#[inline(always)]
#[allow(clippy::excessive_precision)] // the Cephes ln2 split is exact in f32
fn fast_exp(x: f32) -> f32 {
    const LOG2EF: f32 = std::f32::consts::LOG2_E;
    const C1: f32 = 0.693_359_375; // ln 2, split high…
    const C2: f32 = -2.121_944_4e-4; // …and low for exact range reduction
    const CUTOFF: f32 = -87.0; // below this, expf underflows to 0
    let keep = (x > CUTOFF) as u32 as f32;
    let xc = x.max(CUTOFF);
    // floor(x * log2(e) + 0.5), branchlessly.
    let t = xc * LOG2EF + 0.5;
    let mut zi = t as i32;
    zi -= (zi as f32 > t) as i32;
    let z = zi as f32;
    let xr = xc - z * C1 - z * C2;
    let mut p = 1.987_569_2e-4f32;
    p = p * xr + 1.398_199_9e-3;
    p = p * xr + 8.333_452e-3;
    p = p * xr + 4.166_579_6e-2;
    p = p * xr + 1.666_666_5e-1;
    p = p * xr + 5.000_000_3e-1;
    let poly = p * xr * xr + xr + 1.0;
    let two_z = f32::from_bits(((zi + 127) << 23) as u32);
    poly * two_z * keep
}

/// `row[i] = exp(row[i] - max)` over a whole attention row.
///
/// On x86-64 with AVX2+FMA (which `target-cpu=native` enables on any recent
/// machine) this runs the polynomial 8 lanes at a time — LLVM does not
/// auto-vectorize the scalar version because of the int/float bit juggling.
/// Both paths evaluate the identical polynomial, so results match lane for
/// lane.
fn exp_row(row: &mut [f32], max: f32) {
    #[cfg(all(target_arch = "x86_64", target_feature = "avx2", target_feature = "fma"))]
    // SAFETY: the avx2/fma target features are statically enabled for this
    // compilation (checked by the cfg above).
    unsafe {
        exp_row_avx2(row, max);
    }
    #[cfg(not(all(target_arch = "x86_64", target_feature = "avx2", target_feature = "fma")))]
    for v in row.iter_mut() {
        *v = fast_exp(*v - max);
    }
}

#[cfg(all(target_arch = "x86_64", target_feature = "avx2", target_feature = "fma"))]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::excessive_precision)] // the Cephes ln2 split is exact in f32
unsafe fn exp_row_avx2(row: &mut [f32], max: f32) {
    use std::arch::x86_64::*;
    const LOG2EF: f32 = std::f32::consts::LOG2_E;
    const C1: f32 = 0.693_359_375;
    const C2: f32 = -2.121_944_4e-4;
    const CUTOFF: f32 = -87.0;
    unsafe {
        let vmax = _mm256_set1_ps(max);
        let vcut = _mm256_set1_ps(CUTOFF);
        let vlog2e = _mm256_set1_ps(LOG2EF);
        let vhalf = _mm256_set1_ps(0.5);
        let vc1 = _mm256_set1_ps(C1);
        let vc2 = _mm256_set1_ps(C2);
        let vone = _mm256_set1_ps(1.0);
        let bias = _mm256_set1_epi32(127);
        let coeffs = [
            _mm256_set1_ps(1.398_199_9e-3),
            _mm256_set1_ps(8.333_452e-3),
            _mm256_set1_ps(4.166_579_6e-2),
            _mm256_set1_ps(1.666_666_5e-1),
            _mm256_set1_ps(5.000_000_3e-1),
        ];
        let c0 = _mm256_set1_ps(1.987_569_2e-4);
        let mut chunks = row.chunks_exact_mut(8);
        for c in &mut chunks {
            let x = _mm256_sub_ps(_mm256_loadu_ps(c.as_ptr()), vmax);
            let keep = _mm256_cmp_ps::<_CMP_GT_OQ>(x, vcut);
            let xc = _mm256_max_ps(x, vcut);
            let z = _mm256_floor_ps(_mm256_fmadd_ps(xc, vlog2e, vhalf));
            let zi = _mm256_cvttps_epi32(z);
            let mut xr = _mm256_fnmadd_ps(z, vc1, xc);
            xr = _mm256_fnmadd_ps(z, vc2, xr);
            let mut poly = c0;
            for coef in coeffs {
                poly = _mm256_fmadd_ps(poly, xr, coef);
            }
            let xr2 = _mm256_mul_ps(xr, xr);
            poly = _mm256_add_ps(_mm256_fmadd_ps(poly, xr2, xr), vone);
            let two_z = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(zi, bias)));
            let result = _mm256_and_ps(_mm256_mul_ps(poly, two_z), keep);
            _mm256_storeu_ps(c.as_mut_ptr(), result);
        }
        for v in chunks.into_remainder() {
            *v = fast_exp(*v - max);
        }
    }
}

/// `out[n,m] = x[n,k] · W[k,m] + b[1,m]`, reading `W`/`b` in place.
///
/// Dispatches to a const-width kernel for the output widths the TabBiN
/// geometries actually use: with `M` known at compile time the accumulator
/// lives in registers and the inner loop fully unrolls, which is worth ~2×
/// over the runtime-width fallback at these tiny widths.
fn linear(x: &[f32], n: usize, k: usize, w: &Tensor, b: &Tensor, out: &mut [f32]) {
    let m = w.cols();
    debug_assert_eq!(w.rows(), k);
    debug_assert_eq!(b.len(), m);
    let bd = b.data();
    let wd = w.data();
    match m {
        16 => linear_m::<16>(x, n, k, wd, bd, out),
        24 => linear_m::<24>(x, n, k, wd, bd, out),
        32 => linear_m::<32>(x, n, k, wd, bd, out),
        48 => linear_m::<48>(x, n, k, wd, bd, out),
        64 => linear_m::<64>(x, n, k, wd, bd, out),
        96 => linear_m::<96>(x, n, k, wd, bd, out),
        _ => linear_any(x, n, k, wd, m, bd, out),
    }
}

#[inline(always)]
fn linear_m<const M: usize>(
    x: &[f32],
    n: usize,
    k: usize,
    wd: &[f32],
    bd: &[f32],
    out: &mut [f32],
) {
    let mut acc = [0.0f32; M];
    for i in 0..n {
        acc.copy_from_slice(bd);
        let xrow = &x[i * k..(i + 1) * k];
        for (p, &xv) in xrow.iter().enumerate() {
            let wrow = &wd[p * M..(p + 1) * M];
            for (o, &wv) in acc.iter_mut().zip(wrow) {
                *o += xv * wv;
            }
        }
        out[i * M..(i + 1) * M].copy_from_slice(&acc);
    }
}

fn linear_any(x: &[f32], n: usize, k: usize, wd: &[f32], m: usize, bd: &[f32], out: &mut [f32]) {
    for i in 0..n {
        let orow = &mut out[i * m..(i + 1) * m];
        orow.copy_from_slice(bd);
        let xrow = &x[i * k..(i + 1) * k];
        for (p, &xv) in xrow.iter().enumerate() {
            let wrow = &wd[p * m..(p + 1) * m];
            for (o, &wv) in orow.iter_mut().zip(wrow) {
                *o += xv * wv;
            }
        }
    }
}

/// Row-wise layer normalization, same formula as the tape op.
fn layer_norm(
    x: &[f32],
    n: usize,
    d: usize,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
    out: &mut [f32],
) {
    let gd = gamma.data();
    let bd = beta.data();
    for i in 0..n {
        let row = &x[i * d..(i + 1) * d];
        let mu = row.iter().sum::<f32>() / d as f32;
        let var = row.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / d as f32;
        let istd = 1.0 / (var + eps).sqrt();
        let orow = &mut out[i * d..(i + 1) * d];
        for j in 0..d {
            orow[j] = (row[j] - mu) * istd * gd[j] + bd[j];
        }
    }
}

fn add_assign(x: &mut [f32], y: &[f32]) {
    for (a, b) in x.iter_mut().zip(y) {
        *a += *b;
    }
}

/// Builds the additive visibility mask directly as `f32` (0 visible,
/// `MASK_NEG` hidden), fusing `EncodedSequence::visibility` +
/// `nn::additive_mask` without the intermediate `Vec<Vec<bool>>`.
fn visibility_mask(seq: &EncodedSequence, mask: &mut [f32]) {
    let n = seq.len();
    for (i, ti) in seq.tokens.iter().enumerate() {
        let mrow = &mut mask[i * n..(i + 1) * n];
        for (j, tj) in seq.tokens.iter().enumerate() {
            let visible =
                i == j || ti.special || tj.special || (ti.row == tj.row) || (ti.col == tj.col);
            mrow[j] = if visible { 0.0 } else { MASK_NEG };
        }
    }
}

/// The fused six-component embedding layer: one pass per token, summing
/// directly into `x[n,h]`, followed by the embedding layer norm.
fn embed_tokens(model: &TabBiNModel, seq: &EncodedSequence, x: &mut [f32], tmp: &mut [f32]) {
    let store: &ParamStore = &model.store;
    let cfg = &model.cfg;
    let h = cfg.hidden;
    let quarter = h / 4;
    let sixth = h / 6;
    let tok_table = store.value(model.emb.tok.table);
    let num_tables: [&Tensor; 4] = [
        store.value(model.emb.num[0].table),
        store.value(model.emb.num[1].table),
        store.value(model.emb.num[2].table),
        store.value(model.emb.num[3].table),
    ];
    let cpos_table = store.value(model.emb.cpos.table);
    let tpos_tables: [&Tensor; 6] = [
        store.value(model.emb.tpos[0].table),
        store.value(model.emb.tpos[1].table),
        store.value(model.emb.tpos[2].table),
        store.value(model.emb.tpos[3].table),
        store.value(model.emb.tpos[4].table),
        store.value(model.emb.tpos[5].table),
    ];
    let ty_table = store.value(model.emb.ty.table);
    let fmt_w = store.value(model.emb.fmt.w);
    let fmt_b = store.value(model.emb.fmt.b);

    for (i, t) in seq.tokens.iter().enumerate() {
        let row = &mut tmp[i * h..(i + 1) * h];
        // E_tok.
        row.copy_from_slice(tok_table.row(t.vocab_id as usize));
        // E_num (zero for non-numeric tokens, as the tape path's mask does).
        if let Some(value) = t.value {
            let nf = NumericFeatures::of(value);
            let picks = [
                nf.magnitude as usize,
                nf.precision as usize,
                nf.first_digit as usize,
                nf.last_digit as usize,
            ];
            for (which, &idx) in picks.iter().enumerate() {
                let seg = &mut row[which * quarter..(which + 1) * quarter];
                add_assign(seg, num_tables[which].row(idx));
            }
        }
        // E_cpos.
        add_assign(row, cpos_table.row(t.cell_pos.min(cfg.max_cell_tokens - 1)));
        // E_tpos (ablatable).
        if cfg.ablation.coordinates {
            for (axis, table) in tpos_tables.iter().enumerate() {
                let idx = (t.tpos[axis] as usize).min(cfg.max_coord - 1);
                let seg = &mut row[axis * sixth..(axis + 1) * sixth];
                add_assign(seg, table.row(idx));
            }
        }
        // E_type (ablatable).
        if cfg.ablation.type_inference {
            add_assign(row, ty_table.row(t.sem_type));
        }
        // E_fmt (ablatable): bits · W + b with the 8-bit feature vector.
        if cfg.ablation.units_nesting {
            add_assign(row, fmt_b.data());
            for (bit, &set) in t.feat_bits.iter().enumerate() {
                if set {
                    add_assign(row, fmt_w.row(bit));
                }
            }
        }
    }
    let n = seq.len();
    layer_norm(
        tmp,
        n,
        h,
        store.value(model.emb.ln.gamma),
        store.value(model.emb.ln.beta),
        model.emb.ln.eps,
        x,
    );
}

/// Borrowed views one attention head operates on.
struct HeadArgs<'s> {
    q: &'s [f32],
    k: &'s [f32],
    v: &'s [f32],
    kt: &'s mut [f32],
    scores: &'s mut [f32],
    ctx: &'s mut [f32],
    mask: Option<&'s [f32]>,
    n: usize,
    h: usize,
    off: usize,
}

/// Shared first phase of one attention head (any width): transpose K, seed
/// score rows from the mask, accumulate Q·Kᵀ as n-wide SAXPYs, and apply the
/// branch-free masked softmax (hidden pairs sit at ~-1e9 and underflow to
/// exactly 0 probability, as on the tape path). The inner loops run over
/// `n`, so a compile-time head width buys nothing here — only the context
/// accumulation below is specialized.
fn attn_scores(args: &mut HeadArgs<'_>, dh: usize) {
    let n = args.n;
    let h = args.h;
    let off = args.off;
    // Transpose K_h into [dh, n] so each score row accumulates as n-wide
    // SAXPYs instead of length-dh scalar reductions — the compiler keeps
    // SIMD lanes full without reassociating any float sum.
    for j in 0..n {
        let krow = &args.k[j * h + off..j * h + off + dh];
        for (p, &kv) in krow.iter().enumerate() {
            args.kt[p * n + j] = kv;
        }
    }
    for i in 0..n {
        let srow = &mut args.scores[i * n..(i + 1) * n];
        // Seed the row with the additive mask so no separate mask pass is
        // needed after accumulation.
        match args.mask {
            Some(m) => srow.copy_from_slice(&m[i * n..(i + 1) * n]),
            None => srow.fill(0.0),
        }
        let qi = &args.q[i * h + off..i * h + off + dh];
        for (p, &qv) in qi.iter().enumerate() {
            let ktrow = &args.kt[p * n..(p + 1) * n];
            for (sv, &kv) in srow.iter_mut().zip(ktrow) {
                *sv += qv * kv;
            }
        }
        let max = srow.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        exp_row(srow, max);
        let sum: f32 = srow.iter().sum();
        let inv = 1.0 / sum;
        for sv in srow.iter_mut() {
            *sv *= inv;
        }
    }
}

/// One attention head with a compile-time head width: the shared
/// [`attn_scores`] phase plus a register-resident context accumulator
/// (`ctx_h = scores · V_h`, written straight into the context's head
/// columns — q/k/v are already consumed).
#[inline(always)]
fn attn_head<const DH: usize>(mut args: HeadArgs<'_>) {
    attn_scores(&mut args, DH);
    let HeadArgs { v, scores, ctx, n, h, off, .. } = args;
    for i in 0..n {
        let srow = &scores[i * n..(i + 1) * n];
        let mut acc = [0.0f32; DH];
        for (j, &sv) in srow.iter().enumerate() {
            let vrow = &v[j * h + off..j * h + off + DH];
            for (o, &vv) in acc.iter_mut().zip(vrow) {
                *o += sv * vv;
            }
        }
        ctx[i * h + off..i * h + off + DH].copy_from_slice(&acc);
    }
}

/// Runtime-width fallback of [`attn_head`] for unusual head sizes.
fn attn_head_any(mut args: HeadArgs<'_>, dh: usize) {
    attn_scores(&mut args, dh);
    let HeadArgs { v, scores, ctx, n, h, off, .. } = args;
    for i in 0..n {
        let srow = &scores[i * n..(i + 1) * n];
        let orow = &mut ctx[i * h + off..i * h + off + dh];
        orow.fill(0.0);
        for (j, &sv) in srow.iter().enumerate() {
            let vrow = &v[j * h + off..j * h + off + dh];
            for (o, &vv) in orow.iter_mut().zip(vrow) {
                *o += sv * vv;
            }
        }
    }
}

/// Embeds one sequence without touching the autograd tape: fused forward +
/// mean pool over non-special tokens. Agrees with
/// [`TabBiNModel::embed`] elementwise to within float-reassociation noise.
/// Returns a zero vector for empty sequences.
pub fn embed_with(
    model: &TabBiNModel,
    seq: &EncodedSequence,
    scratch: &mut InferScratch,
) -> Vec<f32> {
    let cfg = &model.cfg;
    let h = cfg.hidden;
    if seq.is_empty() {
        return vec![0.0; h];
    }
    let n = seq.len();
    let heads = cfg.heads;
    let dh = h / heads;
    let scale = 1.0 / (dh as f32).sqrt();
    let store = &model.store;

    grab(&mut scratch.x, n * h);
    grab(&mut scratch.a, n * h);
    grab(&mut scratch.q, n * h);
    grab(&mut scratch.k, n * h);
    grab(&mut scratch.v, n * h);
    grab(&mut scratch.kt, dh * n);
    grab(&mut scratch.scores, n * n);
    grab(&mut scratch.ff, n * cfg.ff);

    embed_tokens(model, seq, &mut scratch.x[..n * h], &mut scratch.a[..n * h]);

    let masked = cfg.ablation.visibility;
    if masked {
        grab(&mut scratch.mask, n * n);
        visibility_mask(seq, &mut scratch.mask[..n * n]);
    }

    for block in &model.blocks {
        // --- attention sublayer (pre-norm) ---
        layer_norm(
            &scratch.x[..n * h],
            n,
            h,
            store.value(block.ln1.gamma),
            store.value(block.ln1.beta),
            block.ln1.eps,
            &mut scratch.a[..n * h],
        );
        let wq = &block.attn.wq;
        let wk = &block.attn.wk;
        let wv = &block.attn.wv;
        linear(&scratch.a, n, h, store.value(wq.w), store.value(wq.b), &mut scratch.q[..n * h]);
        linear(&scratch.a, n, h, store.value(wk.w), store.value(wk.b), &mut scratch.k[..n * h]);
        linear(&scratch.a, n, h, store.value(wv.w), store.value(wv.b), &mut scratch.v[..n * h]);
        // Fold the 1/sqrt(dh) score scaling into Q once (n·h multiplies)
        // instead of once per score entry (n² per head).
        for qv in scratch.q[..n * h].iter_mut() {
            *qv *= scale;
        }
        for head in 0..heads {
            let off = head * dh;
            let mask = if masked { Some(&scratch.mask[..n * n]) } else { None };
            // Specialize on the head width: every TabBiN geometry in the
            // workspace uses dh ∈ {8, 12, 16, 24}, and a compile-time width
            // keeps the per-row context accumulator in registers.
            let head_args = HeadArgs {
                q: &scratch.q,
                k: &scratch.k,
                v: &scratch.v,
                kt: &mut scratch.kt,
                scores: &mut scratch.scores,
                ctx: &mut scratch.a,
                mask,
                n,
                h,
                off,
            };
            match dh {
                8 => attn_head::<8>(head_args),
                12 => attn_head::<12>(head_args),
                16 => attn_head::<16>(head_args),
                24 => attn_head::<24>(head_args),
                _ => attn_head_any(head_args, dh),
            }
        }
        // Output projection reads the concatenated heads from `a`; reuse `q`
        // as its destination, then residual into x.
        let wo = &block.attn.wo;
        linear(&scratch.a, n, h, store.value(wo.w), store.value(wo.b), &mut scratch.q[..n * h]);
        add_assign(&mut scratch.x[..n * h], &scratch.q[..n * h]);

        // --- feed-forward sublayer (pre-norm) ---
        layer_norm(
            &scratch.x[..n * h],
            n,
            h,
            store.value(block.ln2.gamma),
            store.value(block.ln2.beta),
            block.ln2.eps,
            &mut scratch.a[..n * h],
        );
        let (l1, l2) = (&block.ff.lin1, &block.ff.lin2);
        linear(
            &scratch.a,
            n,
            h,
            store.value(l1.w),
            store.value(l1.b),
            &mut scratch.ff[..n * cfg.ff],
        );
        for v in scratch.ff[..n * cfg.ff].iter_mut() {
            *v = gelu_fwd(*v);
        }
        linear(
            &scratch.ff,
            n,
            cfg.ff,
            store.value(l2.w),
            store.value(l2.b),
            &mut scratch.q[..n * h],
        );
        add_assign(&mut scratch.x[..n * h], &scratch.q[..n * h]);
    }

    // Mean pool over non-special tokens (all tokens if every one is special).
    let mut out = vec![0.0f32; h];
    let mut counted = 0usize;
    for (i, t) in seq.tokens.iter().enumerate() {
        if !t.special {
            add_assign(&mut out, &scratch.x[i * h..(i + 1) * h]);
            counted += 1;
        }
    }
    if counted == 0 {
        for i in 0..n {
            add_assign(&mut out, &scratch.x[i * h..(i + 1) * h]);
        }
        counted = n;
    }
    let inv = 1.0 / counted as f32;
    for v in &mut out {
        *v *= inv;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AblationFlags, ModelConfig, SegmentKind};
    use crate::encoding::encode_segment;
    use crate::variants::train_tokenizer;
    use tabbin_table::samples::{figure1_table, table1_sample, table2_relational};
    use tabbin_typeinfer::TypeTagger;

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
    }

    #[test]
    fn no_tape_matches_tape_within_tolerance() {
        let tables = vec![figure1_table(), table1_sample(), table2_relational()];
        let tok = train_tokenizer(&tables);
        let tagger = TypeTagger::new();
        for flags in [
            AblationFlags::full(),
            AblationFlags::no_visibility(),
            AblationFlags::no_type_inference(),
            AblationFlags::no_units_nesting(),
            AblationFlags::no_coordinates(),
        ] {
            let cfg = ModelConfig::tiny().with_ablation(flags);
            let model = TabBiNModel::new(cfg, tok.vocab_size(), 7);
            let mut scratch = InferScratch::new();
            for t in &tables {
                for kind in SegmentKind::ALL {
                    let seq = encode_segment(t, kind, &tok, &tagger, &cfg);
                    let tape = model.embed(&seq);
                    let fused = embed_with(&model, &seq, &mut scratch);
                    assert!(
                        max_abs_diff(&tape, &fused) < 1e-5,
                        "paths diverged ({:?}, {:?}): {}",
                        flags,
                        kind,
                        max_abs_diff(&tape, &fused)
                    );
                }
            }
        }
    }

    #[test]
    fn empty_sequence_embeds_to_zero() {
        let tables = vec![table2_relational()];
        let tok = train_tokenizer(&tables);
        let tagger = TypeTagger::new();
        let cfg = ModelConfig::tiny();
        let model = TabBiNModel::new(cfg, tok.vocab_size(), 3);
        // A relational table has no VMD: empty sequence.
        let seq = encode_segment(&tables[0], SegmentKind::Vmd, &tok, &tagger, &cfg);
        let mut scratch = InferScratch::new();
        let out = embed_with(&model, &seq, &mut scratch);
        assert_eq!(out.len(), cfg.hidden);
        assert_eq!(out, model.embed(&seq));
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        let tables = vec![figure1_table(), table2_relational()];
        let tok = train_tokenizer(&tables);
        let tagger = TypeTagger::new();
        let cfg = ModelConfig::tiny();
        let model = TabBiNModel::new(cfg, tok.vocab_size(), 9);
        let mut scratch = InferScratch::new();
        // Interleave sequences of different lengths through one scratch.
        let seqs: Vec<_> = tables
            .iter()
            .flat_map(|t| SegmentKind::ALL.map(|k| encode_segment(t, k, &tok, &tagger, &cfg)))
            .collect();
        let first: Vec<_> = seqs.iter().map(|s| embed_with(&model, s, &mut scratch)).collect();
        for _ in 0..3 {
            for (s, expect) in seqs.iter().zip(&first) {
                assert_eq!(&embed_with(&model, s, &mut scratch), expect);
            }
        }
    }
}
