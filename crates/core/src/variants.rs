//! The four segment models and the embedding API built on them (§3.3, §4).
//!
//! The paper trains **four** models — data rows ("tuples"), data columns,
//! HMD, and VMD — so that the semantically different contexts are learned
//! independently. [`TabBiNFamily`] owns all four plus the shared tokenizer
//! and type tagger, and exposes the embedding operations the downstream
//! tasks need: column embeddings (CC), table embeddings (TC), entity
//! embeddings (EC), and the composite variants of §4.5.

use crate::composite;
use crate::config::{ModelConfig, SegmentKind};
use crate::encoding::{encode_column, encode_segment, encode_text, EncodedSequence};
use crate::model::TabBiNModel;
use crate::pretrain::{pretrain, PretrainOptions, StepStats};
use tabbin_table::Table;
use tabbin_tokenizer::Tokenizer;
use tabbin_typeinfer::TypeTagger;

/// The four pre-trained TabBiN models plus shared preprocessing.
#[derive(Debug)]
pub struct TabBiNFamily {
    /// Data-row ("tuple") model.
    pub row: TabBiNModel,
    /// Data-column model.
    pub col: TabBiNModel,
    /// Horizontal-metadata model.
    pub hmd: TabBiNModel,
    /// Vertical-metadata model.
    pub vmd: TabBiNModel,
    /// Shared WordPiece tokenizer (trained on the corpus, standing in for the
    /// BioBERT vocabulary).
    pub tokenizer: Tokenizer,
    /// Shared semantic type tagger.
    pub tagger: TypeTagger,
    /// Shared geometry.
    pub cfg: ModelConfig,
}

impl TabBiNFamily {
    /// Builds the family, training the tokenizer vocabulary on `tables`.
    pub fn new(tables: &[Table], cfg: ModelConfig, seed: u64) -> Self {
        cfg.validate();
        let tokenizer = train_tokenizer(tables);
        let vocab = tokenizer.vocab_size();
        Self {
            row: TabBiNModel::new(cfg, vocab, seed ^ 0x01),
            col: TabBiNModel::new(cfg, vocab, seed ^ 0x02),
            hmd: TabBiNModel::new(cfg, vocab, seed ^ 0x03),
            vmd: TabBiNModel::new(cfg, vocab, seed ^ 0x04),
            tokenizer,
            tagger: TypeTagger::new(),
            cfg,
        }
    }

    /// Pre-trains all four models on their respective segment sequences.
    /// Returns the loss curves keyed by segment kind order
    /// (row, column, hmd, vmd).
    pub fn pretrain(&mut self, tables: &[Table], opts: &PretrainOptions) -> [Vec<StepStats>; 4] {
        let mut curves: [Vec<StepStats>; 4] = Default::default();
        for (slot, kind) in SegmentKind::ALL.iter().enumerate() {
            let seqs: Vec<EncodedSequence> = tables
                .iter()
                .map(|t| encode_segment(t, *kind, &self.tokenizer, &self.tagger, &self.cfg))
                .filter(|s| !s.is_empty())
                .collect();
            let model = self.model_mut(*kind);
            curves[slot] = pretrain(model, &seqs, opts);
        }
        curves
    }

    /// The model for a segment kind.
    pub fn model(&self, kind: SegmentKind) -> &TabBiNModel {
        match kind {
            SegmentKind::DataRow => &self.row,
            SegmentKind::DataColumn => &self.col,
            SegmentKind::Hmd => &self.hmd,
            SegmentKind::Vmd => &self.vmd,
        }
    }

    fn model_mut(&mut self, kind: SegmentKind) -> &mut TabBiNModel {
        match kind {
            SegmentKind::DataRow => &mut self.row,
            SegmentKind::DataColumn => &mut self.col,
            SegmentKind::Hmd => &mut self.hmd,
            SegmentKind::Vmd => &mut self.vmd,
        }
    }

    /// Embedding of column `j`'s *data* via the column model (`Ē_d`).
    pub fn embed_column_data(&self, table: &Table, j: usize) -> Vec<f32> {
        let seq = encode_column(table, j, &self.tokenizer, &self.tagger, &self.cfg);
        self.col.embed(&seq)
    }

    /// Embedding of column `j`'s *attribute* via the HMD model (`E_cj`): the
    /// root-to-leaf label path of the column header.
    pub fn embed_attribute(&self, table: &Table, j: usize) -> Vec<f32> {
        let paths = table.hmd.leaf_label_paths();
        let text = match paths.get(j) {
            Some(p) => p.join(" "),
            None => format!("column {j}"),
        };
        let seq = encode_text(&text, &self.tokenizer, &self.tagger, &self.cfg);
        self.hmd.embed(&seq)
    }

    /// The CC composite (`TabBiN-colcomp`, Figure 5b): attribute embedding
    /// from the HMD model ⊕ mean data embedding from the column model.
    pub fn embed_colcomp(&self, table: &Table, j: usize) -> Vec<f32> {
        composite::concat(&[self.embed_attribute(table, j), self.embed_column_data(table, j)])
    }

    /// Mean data embedding of the whole table via the row model (`Ē_d`).
    pub fn embed_table_data(&self, table: &Table) -> Vec<f32> {
        let seq =
            encode_segment(table, SegmentKind::DataRow, &self.tokenizer, &self.tagger, &self.cfg);
        self.row.embed(&seq)
    }

    /// Mean HMD embedding (`Ē_c`).
    pub fn embed_table_hmd(&self, table: &Table) -> Vec<f32> {
        let seq = encode_segment(table, SegmentKind::Hmd, &self.tokenizer, &self.tagger, &self.cfg);
        self.hmd.embed(&seq)
    }

    /// Mean VMD embedding (`Ē_r`); zero vector for tables without VMD.
    pub fn embed_table_vmd(&self, table: &Table) -> Vec<f32> {
        let seq = encode_segment(table, SegmentKind::Vmd, &self.tokenizer, &self.tagger, &self.cfg);
        self.vmd.embed(&seq)
    }

    /// The TC composite without captions (`TabBiN-tblcomp1`).
    pub fn embed_tblcomp1(&self, table: &Table) -> Vec<f32> {
        composite::concat(&[
            self.embed_table_data(table),
            self.embed_table_hmd(table),
            self.embed_table_vmd(table),
        ])
    }

    /// The TC composite with a caption embedding supplied by an external
    /// caption encoder (`TabBiN-tblcomp2`; the paper uses BioBERT fine-tuned
    /// on captions).
    pub fn embed_tblcomp2(&self, table: &Table, caption_emb: &[f32]) -> Vec<f32> {
        composite::concat(&[self.embed_tblcomp1(table), caption_emb.to_vec()])
    }

    /// Caption embedding from the row model (used when no external caption
    /// encoder is supplied).
    pub fn embed_caption(&self, table: &Table) -> Vec<f32> {
        let seq = encode_text(&table.caption, &self.tokenizer, &self.tagger, &self.cfg);
        self.row.embed(&seq)
    }

    /// Default full table embedding: `tblcomp2` with the internal caption
    /// encoder.
    pub fn embed_table(&self, table: &Table) -> Vec<f32> {
        let cap = self.embed_caption(table);
        self.embed_tblcomp2(table, &cap)
    }

    /// Batched [`TabBiNFamily::embed_table`] over many tables: parameters are
    /// placed once per segment model (not once per table) and large batches
    /// fan out across threads. Elementwise equal to the per-table loop.
    pub fn embed_tables(&self, tables: &[Table]) -> Vec<Vec<f32>> {
        crate::batch::BatchEncoder::new(self).embed_tables(tables)
    }

    /// [`TabBiNFamily::embed_tables`] over borrowed tables.
    pub fn embed_table_refs(&self, tables: &[&Table]) -> Vec<Vec<f32>> {
        crate::batch::BatchEncoder::new(self).embed_table_refs(tables)
    }

    /// Batched [`TabBiNFamily::embed_colcomp`] over every column of `table`.
    pub fn embed_columns(&self, table: &Table) -> Vec<Vec<f32>> {
        crate::batch::BatchEncoder::new(self).embed_columns(table)
    }

    /// Batched [`TabBiNFamily::embed_colcomp`] over the listed columns only.
    pub fn embed_columns_subset(&self, table: &Table, cols: &[usize]) -> Vec<Vec<f32>> {
        crate::batch::BatchEncoder::new(self).embed_columns_subset(table, cols)
    }

    /// Batched [`TabBiNFamily::embed_entity`] over many surface forms.
    pub fn embed_entities<S: AsRef<str>>(&self, texts: &[S]) -> Vec<Vec<f32>> {
        crate::batch::BatchEncoder::new(self).embed_entities(texts)
    }

    /// Embeds `tables` and streams the composites into any
    /// [`tabbin_index::VectorSink`] — a `VectorStore`, a `ShardedStore`, or
    /// a custom sink — sized for dimension `4 * hidden`; returns the
    /// assigned ids in table order.
    pub fn embed_tables_into<S: tabbin_index::VectorSink>(
        &self,
        sink: &mut S,
        tables: &[Table],
    ) -> Vec<u64> {
        crate::batch::BatchEncoder::new(self).embed_into(sink, tables)
    }

    /// Entity embedding via the column model (§4.3 uses the TabBiN-column
    /// model for entity clustering).
    pub fn embed_entity(&self, text: &str) -> Vec<f32> {
        let seq = encode_text(text, &self.tokenizer, &self.tagger, &self.cfg);
        self.col.embed(&seq)
    }

    /// Row ("tuple") embedding via the row model, used by entity matching.
    pub fn embed_row(&self, table: &Table, i: usize) -> Vec<f32> {
        let seq = crate::encoding::encode_row(table, i, &self.tokenizer, &self.tagger, &self.cfg);
        self.row.embed(&seq)
    }
}

/// Trains the shared WordPiece vocabulary over every text surface of the
/// corpus: captions, metadata labels (all levels), and rendered cells,
/// including nested tables.
pub fn train_tokenizer(tables: &[Table]) -> Tokenizer {
    let mut texts: Vec<String> = Vec::new();
    for t in tables {
        collect_texts(t, &mut texts);
    }
    Tokenizer::train(texts.iter().map(String::as_str), 8000, 1)
}

fn collect_texts(t: &Table, out: &mut Vec<String>) {
    out.push(t.caption.clone());
    for (l, _) in t.hmd.all_labels() {
        out.push(l.to_string());
    }
    for (l, _) in t.vmd.all_labels() {
        out.push(l.to_string());
    }
    for (_, _, c) in t.data.iter_indexed() {
        match c {
            tabbin_table::CellValue::Nested(inner) => collect_texts(inner, out),
            other => out.push(other.render()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabbin_table::samples::{figure1_table, table1_sample, table2_relational};

    fn tables() -> Vec<Table> {
        vec![figure1_table(), table1_sample(), table2_relational()]
    }

    #[test]
    fn family_builds_and_embeds() {
        let ts = tables();
        let fam = TabBiNFamily::new(&ts, ModelConfig::tiny(), 11);
        let col = fam.embed_colcomp(&ts[2], 0);
        assert_eq!(col.len(), 2 * fam.cfg.hidden);
        let tbl = fam.embed_tblcomp1(&ts[0]);
        assert_eq!(tbl.len(), 3 * fam.cfg.hidden);
        let tbl2 = fam.embed_table(&ts[0]);
        assert_eq!(tbl2.len(), 4 * fam.cfg.hidden);
    }

    #[test]
    fn vmd_of_relational_table_is_zero() {
        let ts = tables();
        let fam = TabBiNFamily::new(&ts, ModelConfig::tiny(), 11);
        let v = fam.embed_table_vmd(&ts[2]);
        // Relational tables have no VMD; encoding yields only the [CLS]
        // token, so the pooled output is finite and content-free, or all
        // zeros for the fully empty case. Either way the vector is valid.
        assert_eq!(v.len(), fam.cfg.hidden);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn pretrain_runs_for_all_variants() {
        let ts = tables();
        let mut fam = TabBiNFamily::new(&ts, ModelConfig::tiny(), 11);
        let opts = PretrainOptions { steps: 3, batch: 2, ..PretrainOptions::default() };
        let curves = fam.pretrain(&ts, &opts);
        // Row/column/HMD always have sequences; VMD exists for the BiN table.
        assert_eq!(curves[0].len(), 3);
        assert_eq!(curves[1].len(), 3);
        assert_eq!(curves[2].len(), 3);
        assert_eq!(curves[3].len(), 3);
    }

    #[test]
    fn entity_embeddings_distinguish_entities() {
        let ts = tables();
        let fam = TabBiNFamily::new(&ts, ModelConfig::tiny(), 11);
        let a = fam.embed_entity("ramucirumab");
        let b = fam.embed_entity("colon cancer");
        assert_ne!(a, b);
        assert_eq!(a, fam.embed_entity("ramucirumab"));
    }

    #[test]
    fn attribute_embedding_uses_label_path() {
        let ts = tables();
        let fam = TabBiNFamily::new(&ts, ModelConfig::tiny(), 11);
        // Column 0 of Figure 1 is "Efficacy End Point -> Overall Survival";
        // column 2 is "Other Efficacy -> Details". Their attribute embeddings
        // must differ.
        let a = fam.embed_attribute(&ts[0], 0);
        let b = fam.embed_attribute(&ts[0], 2);
        assert_ne!(a, b);
    }
}
