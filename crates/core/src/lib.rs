//! **TabBiN** — structure- and metadata-aware transformer embeddings for
//! tables with bi-dimensional hierarchical metadata and nesting.
//!
//! This crate is the paper's primary contribution, reproduced end to end:
//!
//! * [`config`] — model geometry, segment kinds, and the ablation switches
//!   studied in §4.6 (visibility matrix, type inference, units & nesting,
//!   bi-dimensional coordinates).
//! * [`encoding`] — turning a [`tabbin_table::Table`] segment (data rows,
//!   data columns, HMD, VMD) into an encoded token sequence carrying all six
//!   embedding inputs plus the visibility addresses (Figure 3).
//! * [`embedding`] — the six-component embedding layer (§3.1): token,
//!   numeric features, in-cell position, in-table (bi-dimensional + nested)
//!   position, inferred type, and cell features (units + nesting).
//! * [`model`] — the visibility-masked transformer encoder (Eq. 1) with MLM
//!   and Cell-level-Cloze heads.
//! * [`pretrain`] — the self-supervised pre-training loop (§3.3).
//! * [`variants`] — the four segment models (data-row, data-column, HMD,
//!   VMD) trained separately so each context is learned independently.
//! * [`composite`] — composite embeddings for downstream tasks (§3.4, §4.5):
//!   `colcomp`, `tblcomp1`, `tblcomp2`, and the numeric/range CE structures
//!   of Figure 4.
//! * [`matcher`] — the linear + softmax binary entity-matching head used for
//!   the DITTO comparison (Table 9).
//!
//! # Quickstart
//!
//! ```
//! use tabbin_core::config::ModelConfig;
//! use tabbin_core::variants::TabBiNFamily;
//! use tabbin_core::pretrain::PretrainOptions;
//! use tabbin_table::samples::figure1_table;
//!
//! let tables = vec![figure1_table()];
//! let cfg = ModelConfig::tiny();
//! let mut family = TabBiNFamily::new(&tables, cfg, 7);
//! family.pretrain(&tables, &PretrainOptions { steps: 3, ..Default::default() });
//! let emb = family.embed_table(&tables[0]);
//! assert!(!emb.is_empty());
//! ```

pub mod batch;
pub mod checkpoint;
pub mod composite;
pub mod config;
pub mod embedding;
pub mod encoding;
pub mod infer;
pub mod matcher;
pub mod model;
pub mod pretrain;
pub mod variants;

pub use batch::{BatchEncoder, EmbedSession};
pub use config::{AblationFlags, ModelConfig, SegmentKind};
pub use model::TabBiNModel;
pub use variants::TabBiNFamily;
