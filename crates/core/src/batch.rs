//! The batched encode→embed pipeline.
//!
//! The naive inference path ([`TabBiNFamily::embed_table`]) builds a fresh
//! autograd tape per table *and per segment model*, copying every parameter
//! tensor onto each tape. For bulk workloads — clustering 227k CancerKG
//! columns behind LSH blocking, corpus-scale table search, benchmarking —
//! that allocation churn dominates. This module provides the batched
//! alternative:
//!
//! * [`EmbedSession`] — a reusable inference arena: the fused no-tape
//!   kernel's scratch buffers (see [`crate::infer`]) are cleared and reused
//!   between calls instead of reallocated.
//! * [`BatchEncoder`] — encodes and embeds **many** tables/columns/entities
//!   in one pass per segment model, and dispatches batches past
//!   [`PARALLEL_BATCH_THRESHOLD`] row-parallel across worker threads with
//!   `crossbeam` (each worker owns its own arena; the model is shared
//!   read-only).
//!
//! Batched outputs agree with the per-table loop elementwise to within 1e-5
//! (the fused kernel sums floats in a slightly different order than the
//! tape), so callers can switch paths freely; a property test in
//! `tests/prop_batch.rs` pins the bound.

use crate::config::SegmentKind;
use crate::encoding::{encode_column, encode_segment, encode_text, EncodedSequence};
use crate::infer::{embed_with, InferScratch};
use crate::model::TabBiNModel;
use crate::variants::TabBiNFamily;
use tabbin_index::VectorSink;
use tabbin_table::Table;

/// Batch size at which embedding fans out across worker threads. Mirrors the
/// spirit of the tensor crate's parallel-matmul FLOP threshold: below this,
/// thread spawn overhead beats the win. The dispatch itself
/// ([`par_chunk_map`]) is the workspace-shared helper in
/// `tabbin_index::parallel`, which the vector store's batched queries use
/// too.
pub const PARALLEL_BATCH_THRESHOLD: usize = tabbin_index::parallel::PARALLEL_TASK_THRESHOLD;

use tabbin_index::parallel::par_chunk_map;

/// A reusable inference arena for repeated embedding calls.
///
/// Holds the no-tape kernel's scratch buffers, which are resized — not
/// reallocated — between calls, so steady-state embedding performs no heap
/// allocation beyond the returned vectors.
#[derive(Default)]
pub struct EmbedSession {
    scratch: InferScratch,
}

impl EmbedSession {
    /// A fresh session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Embeds one sequence through the fused no-tape kernel, reusing this
    /// session's buffers. Agrees with `model.embed(seq)` to within 1e-5.
    pub fn embed(&mut self, model: &TabBiNModel, seq: &EncodedSequence) -> Vec<f32> {
        embed_with(model, seq, &mut self.scratch)
    }

    /// Embeds a batch of sequences, reusing this session's buffers.
    pub fn embed_batch(&mut self, model: &TabBiNModel, seqs: &[&EncodedSequence]) -> Vec<Vec<f32>> {
        seqs.iter().map(|s| embed_with(model, s, &mut self.scratch)).collect()
    }
}

/// Embeds a batch through one model, fanning out across threads for large
/// batches. Each worker runs the fused no-tape kernel with its own scratch
/// arena; the model is shared read-only and results preserve input order.
pub fn embed_batch_parallel(model: &TabBiNModel, seqs: &[&EncodedSequence]) -> Vec<Vec<f32>> {
    par_chunk_map(seqs, |part| {
        let mut session = EmbedSession::new();
        session.embed_batch(model, part)
    })
}

/// Per-table encoded segments feeding the composite table embedding.
struct TableSegments {
    caption: EncodedSequence,
    data: EncodedSequence,
    hmd: EncodedSequence,
    vmd: EncodedSequence,
}

/// Batched encoder over a [`TabBiNFamily`]: the bulk-embedding surface of
/// the workspace.
pub struct BatchEncoder<'a> {
    family: &'a TabBiNFamily,
}

impl<'a> BatchEncoder<'a> {
    /// Wraps a family for batched embedding.
    pub fn new(family: &'a TabBiNFamily) -> Self {
        Self { family }
    }

    /// Encodes all four segments of every table (parallel across tables for
    /// large batches — encoding is pure).
    fn encode_tables(&self, tables: &[&Table]) -> Vec<TableSegments> {
        let fam = self.family;
        let encode_one = |t: &&Table| TableSegments {
            caption: encode_text(&t.caption, &fam.tokenizer, &fam.tagger, &fam.cfg),
            data: encode_segment(t, SegmentKind::DataRow, &fam.tokenizer, &fam.tagger, &fam.cfg),
            hmd: encode_segment(t, SegmentKind::Hmd, &fam.tokenizer, &fam.tagger, &fam.cfg),
            vmd: encode_segment(t, SegmentKind::Vmd, &fam.tokenizer, &fam.tagger, &fam.cfg),
        };
        par_chunk_map(tables, |part| part.iter().map(encode_one).collect())
    }

    /// Composite table embeddings (`tblcomp2` = data ⊕ HMD ⊕ VMD ⊕ caption)
    /// for a whole batch of tables. Elementwise equal to calling
    /// [`TabBiNFamily::embed_table`] per table, but each segment model's
    /// parameters are placed once per worker instead of four times per table.
    pub fn embed_tables(&self, tables: &[Table]) -> Vec<Vec<f32>> {
        let refs: Vec<&Table> = tables.iter().collect();
        self.embed_table_refs(&refs)
    }

    /// [`BatchEncoder::embed_tables`] over borrowed tables — the shape
    /// evaluation harnesses naturally hold after filtering a corpus.
    pub fn embed_table_refs(&self, tables: &[&Table]) -> Vec<Vec<f32>> {
        let segments = self.encode_tables(tables);
        let fam = self.family;

        // Row model consumes data rows and captions; batch them together.
        let mut row_in: Vec<&EncodedSequence> = Vec::with_capacity(2 * segments.len());
        row_in.extend(segments.iter().map(|s| &s.data));
        row_in.extend(segments.iter().map(|s| &s.caption));
        let row_out = embed_batch_parallel(&fam.row, &row_in);
        let (data_out, caption_out) = row_out.split_at(segments.len());

        let hmd_in: Vec<&EncodedSequence> = segments.iter().map(|s| &s.hmd).collect();
        let hmd_out = embed_batch_parallel(&fam.hmd, &hmd_in);
        let vmd_in: Vec<&EncodedSequence> = segments.iter().map(|s| &s.vmd).collect();
        let vmd_out = embed_batch_parallel(&fam.vmd, &vmd_in);

        (0..segments.len())
            .map(|i| {
                crate::composite::concat(&[
                    data_out[i].clone(),
                    hmd_out[i].clone(),
                    vmd_out[i].clone(),
                    caption_out[i].clone(),
                ])
            })
            .collect()
    }

    /// `colcomp` embeddings (attribute ⊕ column data) for **every** column of
    /// `table`, batched per segment model. Elementwise equal to calling
    /// [`TabBiNFamily::embed_colcomp`] per column.
    pub fn embed_columns(&self, table: &Table) -> Vec<Vec<f32>> {
        let all: Vec<usize> = (0..table.n_cols()).collect();
        self.embed_columns_subset(table, &all)
    }

    /// [`BatchEncoder::embed_columns`] restricted to the listed column
    /// indices (output order follows `cols`) — evaluation harnesses often
    /// need only a filtered subset (e.g. numeric columns), and embedding the
    /// rest just to discard it is wasted work.
    pub fn embed_columns_subset(&self, table: &Table, cols: &[usize]) -> Vec<Vec<f32>> {
        let fam = self.family;
        let paths = table.hmd.leaf_label_paths();
        let attr_seqs: Vec<EncodedSequence> = cols
            .iter()
            .map(|&j| {
                let text = match paths.get(j) {
                    Some(p) => p.join(" "),
                    None => format!("column {j}"),
                };
                encode_text(&text, &fam.tokenizer, &fam.tagger, &fam.cfg)
            })
            .collect();
        let col_seqs: Vec<EncodedSequence> = cols
            .iter()
            .map(|&j| encode_column(table, j, &fam.tokenizer, &fam.tagger, &fam.cfg))
            .collect();

        let attr_refs: Vec<&EncodedSequence> = attr_seqs.iter().collect();
        let col_refs: Vec<&EncodedSequence> = col_seqs.iter().collect();
        let attr_out = embed_batch_parallel(&fam.hmd, &attr_refs);
        let col_out = embed_batch_parallel(&fam.col, &col_refs);

        (0..cols.len())
            .map(|j| crate::composite::concat(&[attr_out[j].clone(), col_out[j].clone()]))
            .collect()
    }

    /// Embeds `tables` through the batched pipeline and streams the
    /// composite embeddings straight into `sink` — a single
    /// [`tabbin_index::VectorStore`], a [`tabbin_index::ShardedStore`], or
    /// any other [`VectorSink`] — one `insert` per table, in input order.
    /// Returns
    /// the assigned ids, so callers can map store hits back to tables.
    /// The sink must be sized for the composite dimension (`4 * hidden`).
    pub fn embed_into<S: VectorSink>(&self, sink: &mut S, tables: &[Table]) -> Vec<u64> {
        let composite = 4 * self.family.cfg.hidden;
        assert_eq!(
            sink.dim(),
            composite,
            "sink sized for {}-dim vectors, but table composites are {composite}-dim \
             (4 * hidden)",
            sink.dim()
        );
        self.embed_tables(tables).iter().map(|v| sink.insert(v)).collect()
    }

    /// [`BatchEncoder::embed_into`] for `colcomp` column embeddings of one
    /// table (sink dimension `2 * hidden`). Returns one id per column.
    pub fn embed_columns_into<S: VectorSink>(&self, sink: &mut S, table: &Table) -> Vec<u64> {
        let colcomp = 2 * self.family.cfg.hidden;
        assert_eq!(
            sink.dim(),
            colcomp,
            "sink sized for {}-dim vectors, but column composites are {colcomp}-dim \
             (2 * hidden)",
            sink.dim()
        );
        self.embed_columns(table).iter().map(|v| sink.insert(v)).collect()
    }

    /// Entity embeddings for a batch of surface forms (column model, as in
    /// §4.3), batched. Elementwise equal to [`TabBiNFamily::embed_entity`]
    /// per text.
    pub fn embed_entities<S: AsRef<str>>(&self, texts: &[S]) -> Vec<Vec<f32>> {
        let fam = self.family;
        let seqs: Vec<EncodedSequence> = texts
            .iter()
            .map(|t| encode_text(t.as_ref(), &fam.tokenizer, &fam.tagger, &fam.cfg))
            .collect();
        let refs: Vec<&EncodedSequence> = seqs.iter().collect();
        embed_batch_parallel(&fam.col, &refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use tabbin_table::samples::{figure1_table, table1_sample, table2_relational};

    fn family() -> (Vec<Table>, TabBiNFamily) {
        let tables = vec![figure1_table(), table1_sample(), table2_relational()];
        let fam = TabBiNFamily::new(&tables, ModelConfig::tiny(), 23);
        (tables, fam)
    }

    /// The batched path runs the fused no-tape kernel, whose float summation
    /// order differs slightly from the tape; 1e-5 is the pinned bound.
    fn assert_close(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length mismatch");
        let max = a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max);
        assert!(max < 1e-5, "{what}: diverged by {max}");
    }

    #[test]
    fn batched_tables_match_per_table_loop() {
        let (tables, fam) = family();
        let batched = BatchEncoder::new(&fam).embed_tables(&tables);
        for (t, b) in tables.iter().zip(&batched) {
            let single = fam.embed_table(t);
            assert_close(&single, b, &format!("table '{}'", t.caption));
        }
    }

    #[test]
    fn batched_columns_match_per_column_loop() {
        let (tables, fam) = family();
        let cols = BatchEncoder::new(&fam).embed_columns(&tables[2]);
        assert_eq!(cols.len(), tables[2].n_cols());
        for (j, c) in cols.iter().enumerate() {
            assert_close(c, &fam.embed_colcomp(&tables[2], j), &format!("column {j}"));
        }
    }

    #[test]
    fn batched_entities_match_per_entity_loop() {
        let (_, fam) = family();
        let texts = ["ramucirumab", "colon cancer", "overall survival"];
        let batch = BatchEncoder::new(&fam).embed_entities(&texts);
        for (t, b) in texts.iter().zip(&batch) {
            assert_close(b, &fam.embed_entity(t), t);
        }
    }

    #[test]
    fn embed_into_streams_batched_embeddings() {
        let (tables, fam) = family();
        let dim = 4 * fam.cfg.hidden;
        let mut store = tabbin_index::VectorStore::exact(dim);
        let ids = BatchEncoder::new(&fam).embed_into(&mut store, &tables);
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(store.len(), tables.len());
        // The store holds the same composites the batch path produces,
        // modulo the normalization it applies: each table's own embedding
        // must retrieve it first with score ~1.
        let batched = BatchEncoder::new(&fam).embed_tables(&tables);
        for (i, emb) in batched.iter().enumerate() {
            let hits = store.search(emb, 1, &tabbin_index::ExactScan);
            assert_eq!(hits[0].id, ids[i]);
            assert!((hits[0].score - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn parallel_dispatch_preserves_order() {
        // Enough tables to cross PARALLEL_BATCH_THRESHOLD.
        let base = vec![figure1_table(), table1_sample(), table2_relational()];
        let tables: Vec<Table> =
            (0..3 * PARALLEL_BATCH_THRESHOLD).map(|i| base[i % base.len()].clone()).collect();
        let fam = TabBiNFamily::new(&base, ModelConfig::tiny(), 29);
        let batched = BatchEncoder::new(&fam).embed_tables(&tables);
        assert_eq!(batched.len(), tables.len());
        // Identical tables must embed identically regardless of which worker
        // handled them, and must match the serial path.
        for (i, t) in tables.iter().enumerate() {
            assert_eq!(batched[i], batched[i % base.len()]);
            assert_close(&batched[i], &fam.embed_table(t), &format!("table {i}"));
        }
    }

    #[test]
    fn session_reuse_is_stable() {
        let (tables, fam) = family();
        let seq =
            encode_segment(&tables[0], SegmentKind::DataRow, &fam.tokenizer, &fam.tagger, &fam.cfg);
        let mut session = EmbedSession::new();
        let first = session.embed(&fam.row, &seq);
        for _ in 0..5 {
            assert_eq!(session.embed(&fam.row, &seq), first);
        }
        assert_close(&first, &fam.row.embed(&seq), "session vs tape");
    }
}
