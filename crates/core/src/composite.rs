//! Composite embeddings (§3.4, Figure 4, Figure 5).
//!
//! The paper composes downstream vectors by concatenating (⊕) segment-model
//! embeddings: `colcomp` for column clustering, `tblcomp1`/`tblcomp2` for
//! table clustering, and attribute⊕value⊕unit structures for numeric values
//! and ranges. These helpers operate on plain `f32` vectors so they also
//! serve the baselines.

use crate::variants::TabBiNFamily;
use tabbin_table::Unit;

/// Concatenates embedding parts (the paper's ⊕ operator).
pub fn concat(parts: &[Vec<f32>]) -> Vec<f32> {
    let total: usize = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend_from_slice(p);
    }
    out
}

/// Elementwise mean of equally-sized vectors; panics on ragged input, returns
/// an empty vector for no input.
pub fn mean(vectors: &[Vec<f32>]) -> Vec<f32> {
    let Some(first) = vectors.first() else {
        return Vec::new();
    };
    let d = first.len();
    let mut out = vec![0.0f32; d];
    for v in vectors {
        assert_eq!(v.len(), d, "mean over ragged vectors");
        for (o, x) in out.iter_mut().zip(v) {
            *o += x;
        }
    }
    let inv = 1.0 / vectors.len() as f32;
    for o in &mut out {
        *o *= inv;
    }
    out
}

/// The Figure 4(a) composite for a numeric attribute value: embeddings of the
/// attribute name, the value, and the unit, concatenated — "OS" ⊕ "20.3" ⊕
/// "months" in the paper's example.
pub fn ce_numeric(
    family: &TabBiNFamily,
    attribute: &str,
    value: f64,
    unit: Option<Unit>,
) -> Vec<f32> {
    let attr = family.embed_entity(attribute);
    let val = family.embed_entity(&format_value(value));
    let unit_emb = embed_unit(family, unit);
    concat(&[attr, val, unit_emb])
}

/// The Figure 4(b) composite for a range: attribute ⊕ unit ⊕ range-start ⊕
/// range-end — "Age" ⊕ "year" ⊕ "20" ⊕ "30".
pub fn ce_range(
    family: &TabBiNFamily,
    attribute: &str,
    lo: f64,
    hi: f64,
    unit: Option<Unit>,
) -> Vec<f32> {
    let attr = family.embed_entity(attribute);
    let unit_emb = embed_unit(family, unit);
    let start = family.embed_entity(&format_value(lo));
    let end = family.embed_entity(&format_value(hi));
    concat(&[attr, unit_emb, start, end])
}

fn embed_unit(family: &TabBiNFamily, unit: Option<Unit>) -> Vec<f32> {
    match unit {
        Some(u) => family.embed_entity(u.name()),
        None => vec![0.0; family.cfg.hidden],
    }
}

fn format_value(v: f64) -> String {
    if v.fract().abs() < 1e-9 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use tabbin_table::samples::table1_sample;

    #[test]
    fn concat_lengths_add() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0];
        assert_eq!(concat(&[a, b]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn mean_averages() {
        let m = mean(&[vec![1.0, 3.0], vec![3.0, 5.0]]);
        assert_eq!(m, vec![2.0, 4.0]);
        assert!(mean(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn mean_rejects_ragged() {
        let _ = mean(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn ce_numeric_structure() {
        let tables = vec![table1_sample()];
        let fam = TabBiNFamily::new(&tables, ModelConfig::tiny(), 3);
        let ce = ce_numeric(&fam, "OS", 20.3, Some(Unit::Time));
        assert_eq!(ce.len(), 3 * fam.cfg.hidden);
        // Same attribute, different value => different CE.
        let ce2 = ce_numeric(&fam, "OS", 13.3, Some(Unit::Time));
        assert_ne!(ce, ce2);
    }

    #[test]
    fn ce_range_structure() {
        let tables = vec![table1_sample()];
        let fam = TabBiNFamily::new(&tables, ModelConfig::tiny(), 3);
        let ce = ce_range(&fam, "Age", 20.0, 30.0, Some(Unit::Time));
        assert_eq!(ce.len(), 4 * fam.cfg.hidden);
        // Missing unit zeroes that block but keeps the shape.
        let ce2 = ce_range(&fam, "Age", 20.0, 30.0, None);
        assert_eq!(ce2.len(), 4 * fam.cfg.hidden);
        assert_ne!(ce, ce2);
    }
}
