//! Model configuration, segment kinds, and ablation switches.

use serde::{Deserialize, Serialize};

/// Which table segment a model variant encodes. The paper trains four models
/// — two for data (tuples, columns) and two for metadata (horizontal,
/// vertical) — "so their context is treated separately" (§3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SegmentKind {
    /// Data cells traversed row by row (the "tuple" model).
    DataRow,
    /// Data cells traversed column by column.
    DataColumn,
    /// Horizontal metadata labels.
    Hmd,
    /// Vertical metadata labels.
    Vmd,
}

impl SegmentKind {
    /// All four variants.
    pub const ALL: [SegmentKind; 4] =
        [SegmentKind::DataRow, SegmentKind::DataColumn, SegmentKind::Hmd, SegmentKind::Vmd];

    /// Short name used in parameter registration and logs.
    pub fn name(self) -> &'static str {
        match self {
            SegmentKind::DataRow => "row",
            SegmentKind::DataColumn => "column",
            SegmentKind::Hmd => "hmd",
            SegmentKind::Vmd => "vmd",
        }
    }
}

/// The four ablations of §4.6. All `true` = full TabBiN; each flag set to
/// `false` reproduces one of the paper's `TabBiN₁₋₄` rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AblationFlags {
    /// `TabBiN₁`: visibility matrix (false ⇒ standard full attention).
    pub visibility: bool,
    /// `TabBiN₂`: type-inference embedding `E_type`.
    pub type_inference: bool,
    /// `TabBiN₃`: units & nesting cell-feature embedding `E_fmt`.
    pub units_nesting: bool,
    /// `TabBiN₄`: bi-dimensional coordinate embedding `E_tpos`.
    pub coordinates: bool,
}

impl Default for AblationFlags {
    fn default() -> Self {
        Self { visibility: true, type_inference: true, units_nesting: true, coordinates: true }
    }
}

impl AblationFlags {
    /// Full model.
    pub fn full() -> Self {
        Self::default()
    }

    /// `TabBiN₁`: no visibility matrix.
    pub fn no_visibility() -> Self {
        Self { visibility: false, ..Self::default() }
    }

    /// `TabBiN₂`: no type inference.
    pub fn no_type_inference() -> Self {
        Self { type_inference: false, ..Self::default() }
    }

    /// `TabBiN₃`: no units & nesting features.
    pub fn no_units_nesting() -> Self {
        Self { units_nesting: false, ..Self::default() }
    }

    /// `TabBiN₄`: no bi-dimensional coordinates.
    pub fn no_coordinates() -> Self {
        Self { coordinates: false, ..Self::default() }
    }
}

/// Model geometry. The paper uses BERT_BASE (H = 768, 12 layers); this
/// reproduction scales widths down so pre-training runs on CPU in seconds
/// while keeping every architectural mechanism intact. `hidden` must be
/// divisible by 12 (the numeric embedding concatenates 4 sub-embeddings and
/// the positional embedding concatenates 6) and by `heads`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Hidden size `H`.
    pub hidden: usize,
    /// Number of encoder blocks.
    pub layers: usize,
    /// Attention heads per block.
    pub heads: usize,
    /// Feed-forward inner width.
    pub ff: usize,
    /// Maximum sequence length (paper: 256).
    pub max_seq: usize,
    /// Maximum tokens kept per cell (paper `I` = 64).
    pub max_cell_tokens: usize,
    /// Maximum coordinate index per axis (paper `G` = 256); larger indices
    /// clamp to the last bucket.
    pub max_coord: usize,
    /// Ablation switches.
    pub ablation: AblationFlags,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            hidden: 48,
            layers: 2,
            heads: 4,
            ff: 96,
            max_seq: 96,
            max_cell_tokens: 8,
            max_coord: 64,
            ablation: AblationFlags::default(),
        }
    }
}

impl ModelConfig {
    /// The smallest usable configuration, for tests.
    pub fn tiny() -> Self {
        Self { hidden: 24, layers: 1, heads: 2, ff: 32, max_seq: 48, ..Self::default() }
    }

    /// Validates divisibility constraints; panics with a clear message.
    pub fn validate(&self) {
        assert!(self.hidden.is_multiple_of(12), "hidden ({}) must be divisible by 12", self.hidden);
        assert!(
            self.hidden.is_multiple_of(self.heads),
            "hidden ({}) must be divisible by heads ({})",
            self.hidden,
            self.heads
        );
        assert!(self.max_seq >= 8, "max_seq too small");
        assert!(self.max_cell_tokens >= 1, "max_cell_tokens must be positive");
        assert!(self.max_coord >= 2, "max_coord too small");
    }

    /// With the given ablation flags.
    pub fn with_ablation(mut self, ablation: AblationFlags) -> Self {
        self.ablation = ablation;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ModelConfig::default().validate();
        ModelConfig::tiny().validate();
    }

    #[test]
    #[should_panic(expected = "divisible by 12")]
    fn rejects_indivisible_hidden() {
        ModelConfig { hidden: 50, ..ModelConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "divisible by heads")]
    fn rejects_head_mismatch() {
        ModelConfig { hidden: 36, heads: 8, ..ModelConfig::default() }.validate();
    }

    #[test]
    fn ablation_constructors_flip_one_flag() {
        assert!(!AblationFlags::no_visibility().visibility);
        assert!(AblationFlags::no_visibility().type_inference);
        assert!(!AblationFlags::no_type_inference().type_inference);
        assert!(!AblationFlags::no_units_nesting().units_nesting);
        assert!(!AblationFlags::no_coordinates().coordinates);
    }

    #[test]
    fn segment_names_unique() {
        let mut names: Vec<&str> = SegmentKind::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
