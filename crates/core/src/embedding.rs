//! The six-component embedding layer (§3.1, Figure 2, Eq. 8):
//!
//! `E = E_tok + E_num + E_cpos + E_tpos + E_type + E_fmt`
//!
//! * `E_tok` — token-semantics table over the WordPiece vocabulary.
//! * `E_num` — concatenation of four sub-embeddings (magnitude, precision,
//!   first digit, last digit), each `[10, H/4]` (Eq. 3); zero for
//!   non-numeric tokens.
//! * `E_cpos` — in-cell position table `[I, H]` (Eq. 4).
//! * `E_tpos` — concatenation of six coordinate sub-embeddings
//!   (vertical row/col, horizontal row/col, nested row/col), each
//!   `[G, H/6]` (Eq. 5).
//! * `E_fmt` — linear map of the 8-bit unit/nesting feature vector (Eq. 6).
//! * `E_type` — the 14-type semantic table (Eq. 7).
//!
//! Ablation flags (§4.6) zero out `E_type`, `E_fmt`, or `E_tpos`.

use crate::config::ModelConfig;
use crate::encoding::EncodedSequence;
use tabbin_table::NumericFeatures;
use tabbin_tensor::nn::{
    Embedding, LayerNorm, Linear, PlacedEmbedding, PlacedLayerNorm, PlacedLinear,
};
use tabbin_tensor::{Graph, NodeId, ParamStore, Tensor};
use tabbin_typeinfer::SemType;

/// All trainable tables of the embedding layer.
#[derive(Clone, Debug)]
pub struct EmbeddingLayer {
    /// Token semantics `W_tok`.
    pub tok: Embedding,
    /// Numeric sub-embeddings `[W_mag, W_pre, W_fst, W_lst]`.
    pub num: [Embedding; 4],
    /// In-cell position `W_cpos`.
    pub cpos: Embedding,
    /// Coordinate sub-embeddings `[W_vr, W_vc, W_hr, W_hc, W_nr, W_nc]`.
    pub tpos: [Embedding; 6],
    /// Semantic type `W_type`.
    pub ty: Embedding,
    /// Cell features `W_fmt` (+ bias), Eq. 6.
    pub fmt: Linear,
    /// Post-sum layer normalization (standard BERT practice).
    pub ln: LayerNorm,
    cfg: ModelConfig,
}

impl EmbeddingLayer {
    /// Registers all tables in `store`.
    pub fn new(store: &mut ParamStore, cfg: &ModelConfig, vocab: usize, seed: u64) -> Self {
        cfg.validate();
        let h = cfg.hidden;
        let q = h / 4;
        let s = h / 6;
        let num = [
            Embedding::new(store, "emb.num.mag", NumericFeatures::BUCKETS, q, seed ^ 0xa1),
            Embedding::new(store, "emb.num.pre", NumericFeatures::BUCKETS, q, seed ^ 0xa2),
            Embedding::new(store, "emb.num.fst", NumericFeatures::BUCKETS, q, seed ^ 0xa3),
            Embedding::new(store, "emb.num.lst", NumericFeatures::BUCKETS, q, seed ^ 0xa4),
        ];
        let tpos = [
            Embedding::new(store, "emb.tpos.vr", cfg.max_coord, s, seed ^ 0xb1),
            Embedding::new(store, "emb.tpos.vc", cfg.max_coord, s, seed ^ 0xb2),
            Embedding::new(store, "emb.tpos.hr", cfg.max_coord, s, seed ^ 0xb3),
            Embedding::new(store, "emb.tpos.hc", cfg.max_coord, s, seed ^ 0xb4),
            Embedding::new(store, "emb.tpos.nr", cfg.max_coord, s, seed ^ 0xb5),
            Embedding::new(store, "emb.tpos.nc", cfg.max_coord, s, seed ^ 0xb6),
        ];
        Self {
            tok: Embedding::new(store, "emb.tok", vocab, h, seed ^ 0xc1),
            num,
            cpos: Embedding::new(store, "emb.cpos", cfg.max_cell_tokens, h, seed ^ 0xc2),
            tpos,
            ty: Embedding::new(store, "emb.type", SemType::COUNT, h, seed ^ 0xc3),
            fmt: Linear::new(store, "emb.fmt", 8, h, seed ^ 0xc4),
            ln: LayerNorm::new(store, "emb.ln", h),
            cfg: *cfg,
        }
    }

    /// Places every (non-ablated) table onto the tape once, so a whole batch
    /// of sequences can be embedded against a single copy of the parameters.
    pub fn place(&self, g: &mut Graph, store: &ParamStore) -> PlacedEmbeddingLayer {
        let tpos = if self.cfg.ablation.coordinates {
            Some([
                self.tpos[0].place(g, store),
                self.tpos[1].place(g, store),
                self.tpos[2].place(g, store),
                self.tpos[3].place(g, store),
                self.tpos[4].place(g, store),
                self.tpos[5].place(g, store),
            ])
        } else {
            None
        };
        PlacedEmbeddingLayer {
            tok: self.tok.place(g, store),
            num: [
                self.num[0].place(g, store),
                self.num[1].place(g, store),
                self.num[2].place(g, store),
                self.num[3].place(g, store),
            ],
            cpos: self.cpos.place(g, store),
            tpos,
            ty: if self.cfg.ablation.type_inference { Some(self.ty.place(g, store)) } else { None },
            fmt: if self.cfg.ablation.units_nesting {
                Some(self.fmt.place(g, store))
            } else {
                None
            },
            ln: self.ln.place(g, store),
            cfg: self.cfg,
        }
    }

    /// Embeds a sequence, producing `[n, H]`. `ids` carries the (possibly
    /// MLM-corrupted) vocabulary ids; pass the sequence's own ids for clean
    /// encoding.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        seq: &EncodedSequence,
        ids: &[u32],
    ) -> NodeId {
        self.place(g, store).forward(g, seq, ids)
    }
}

/// Tape-resident parameter placement of an [`EmbeddingLayer`]. Ablated
/// components are simply not placed.
#[derive(Clone, Copy, Debug)]
pub struct PlacedEmbeddingLayer {
    tok: PlacedEmbedding,
    num: [PlacedEmbedding; 4],
    cpos: PlacedEmbedding,
    tpos: Option<[PlacedEmbedding; 6]>,
    ty: Option<PlacedEmbedding>,
    fmt: Option<PlacedLinear>,
    ln: PlacedLayerNorm,
    cfg: ModelConfig,
}

impl PlacedEmbeddingLayer {
    /// Embeds one sequence against the shared placement, producing `[n, H]`.
    pub fn forward(&self, g: &mut Graph, seq: &EncodedSequence, ids: &[u32]) -> NodeId {
        let n = seq.len();
        assert_eq!(ids.len(), n, "id count must match sequence length");
        assert!(n > 0, "cannot embed an empty sequence");
        let h = self.cfg.hidden;

        // E_tok.
        let tok_ids: Vec<usize> = ids.iter().map(|&i| i as usize).collect();
        let e_tok = self.tok.forward(g, &tok_ids);

        // E_num: four sub-embeddings concatenated, masked to numeric tokens.
        let feats: Vec<Option<NumericFeatures>> =
            seq.tokens.iter().map(|t| t.value.map(NumericFeatures::of)).collect();
        let pick = |f: &Option<NumericFeatures>, which: usize| -> usize {
            match f {
                None => 0,
                Some(nf) => match which {
                    0 => nf.magnitude as usize,
                    1 => nf.precision as usize,
                    2 => nf.first_digit as usize,
                    _ => nf.last_digit as usize,
                },
            }
        };
        let mut num_parts = Vec::with_capacity(4);
        for (which, table) in self.num.iter().enumerate() {
            let idx: Vec<usize> = feats.iter().map(|f| pick(f, which)).collect();
            num_parts.push(table.forward(g, &idx));
        }
        let num_cat = g.concat_cols(&num_parts);
        let mut num_mask = Tensor::zeros(&[n, h]);
        for (i, f) in feats.iter().enumerate() {
            if f.is_some() {
                num_mask.row_mut(i).fill(1.0);
            }
        }
        let e_num = g.mul_const(num_cat, num_mask);

        // E_cpos.
        let cpos_ids: Vec<usize> =
            seq.tokens.iter().map(|t| t.cell_pos.min(self.cfg.max_cell_tokens - 1)).collect();
        let e_cpos = self.cpos.forward(g, &cpos_ids);

        let mut sum = g.add(e_tok, e_num);
        sum = g.add(sum, e_cpos);

        // E_tpos (ablatable).
        if let Some(tpos) = &self.tpos {
            let mut parts = Vec::with_capacity(6);
            for (axis, table) in tpos.iter().enumerate() {
                let idx: Vec<usize> = seq
                    .tokens
                    .iter()
                    .map(|t| (t.tpos[axis] as usize).min(self.cfg.max_coord - 1))
                    .collect();
                parts.push(table.forward(g, &idx));
            }
            let e_tpos = g.concat_cols(&parts);
            sum = g.add(sum, e_tpos);
        }

        // E_type (ablatable).
        if let Some(ty) = &self.ty {
            let ty_ids: Vec<usize> = seq.tokens.iter().map(|t| t.sem_type).collect();
            let e_ty = ty.forward(g, &ty_ids);
            sum = g.add(sum, e_ty);
        }

        // E_fmt (ablatable).
        if let Some(fmt) = &self.fmt {
            let mut bits = Tensor::zeros(&[n, 8]);
            for (i, t) in seq.tokens.iter().enumerate() {
                for (j, &b) in t.feat_bits.iter().enumerate() {
                    if b {
                        *bits.at_mut(i, j) = 1.0;
                    }
                }
            }
            let bits_in = g.input(bits);
            let e_fmt = fmt.forward(g, bits_in);
            sum = g.add(sum, e_fmt);
        }

        self.ln.forward(g, sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SegmentKind;
    use crate::encoding::encode_segment;
    use tabbin_table::samples::{figure1_table, table2_relational};
    use tabbin_tokenizer::Tokenizer;
    use tabbin_typeinfer::TypeTagger;

    fn setup(cfg: &ModelConfig) -> (ParamStore, EmbeddingLayer, Tokenizer, TypeTagger) {
        let tok = Tokenizer::train(["name age job overall survival months sam engineer"], 500, 1);
        let mut store = ParamStore::new();
        let emb = EmbeddingLayer::new(&mut store, cfg, tok.vocab_size(), 1);
        (store, emb, tok, TypeTagger::new())
    }

    fn ids_of(seq: &EncodedSequence) -> Vec<u32> {
        seq.tokens.iter().map(|t| t.vocab_id).collect()
    }

    #[test]
    fn forward_shape_is_n_by_h() {
        let cfg = ModelConfig::tiny();
        let (store, emb, tok, tagger) = setup(&cfg);
        let seq = encode_segment(&table2_relational(), SegmentKind::DataRow, &tok, &tagger, &cfg);
        let mut g = Graph::new();
        let out = emb.forward(&mut g, &store, &seq, &ids_of(&seq));
        assert_eq!(g.value(out).shape(), &[seq.len(), cfg.hidden]);
    }

    #[test]
    fn numeric_tokens_differ_from_text_tokens_via_enum() {
        // Two tokens with the same [VAL] id but different numeric payloads
        // must embed differently (through E_num).
        let cfg = ModelConfig::tiny();
        let (store, emb, tok, tagger) = setup(&cfg);
        let t = tabbin_table::Table::builder("t")
            .hmd_flat(&["a", "b"])
            .row(vec![
                tabbin_table::CellValue::number(5.0, None),
                tabbin_table::CellValue::number(7777.2, None),
            ])
            .build();
        let seq = encode_segment(&t, SegmentKind::DataRow, &tok, &tagger, &cfg);
        let val_rows: Vec<usize> = seq
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.value.is_some())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(val_rows.len(), 2);
        let mut g = Graph::new();
        let out = emb.forward(&mut g, &store, &seq, &ids_of(&seq));
        let v = g.value(out);
        assert_ne!(v.row(val_rows[0]), v.row(val_rows[1]));
    }

    #[test]
    fn coordinate_ablation_changes_output() {
        let cfg = ModelConfig::tiny();
        let (store, emb, tok, tagger) = setup(&cfg);
        let seq = encode_segment(&figure1_table(), SegmentKind::DataRow, &tok, &tagger, &cfg);
        let mut g1 = Graph::new();
        let full = emb.forward(&mut g1, &store, &seq, &ids_of(&seq));
        // Same weights, coordinates ablated.
        let mut emb2 = emb.clone();
        emb2.cfg.ablation.coordinates = false;
        let mut g2 = Graph::new();
        let ablated = emb2.forward(&mut g2, &store, &seq, &ids_of(&seq));
        assert_ne!(g1.value(full).data(), g2.value(ablated).data());
    }

    #[test]
    fn type_and_fmt_ablations_change_output() {
        let cfg = ModelConfig::tiny();
        let (store, emb, tok, tagger) = setup(&cfg);
        let seq = encode_segment(&figure1_table(), SegmentKind::DataRow, &tok, &tagger, &cfg);
        let mut g1 = Graph::new();
        let full_node = emb.forward(&mut g1, &store, &seq, &ids_of(&seq));
        let full = g1.value(full_node).clone();
        for f in [
            crate::config::AblationFlags::no_type_inference(),
            crate::config::AblationFlags::no_units_nesting(),
        ] {
            let mut e2 = emb.clone();
            e2.cfg.ablation = f;
            let mut g2 = Graph::new();
            let out = e2.forward(&mut g2, &store, &seq, &ids_of(&seq));
            assert_ne!(g2.value(out).data(), full.data());
        }
    }

    #[test]
    #[should_panic(expected = "id count")]
    fn mismatched_ids_panic() {
        let cfg = ModelConfig::tiny();
        let (store, emb, tok, tagger) = setup(&cfg);
        let seq = encode_segment(&table2_relational(), SegmentKind::DataRow, &tok, &tagger, &cfg);
        let mut g = Graph::new();
        let _ = emb.forward(&mut g, &store, &seq, &[0, 1, 2]);
    }
}
