//! The TabBiN encoder: embedding layer + visibility-masked transformer stack
//! (Eq. 1) + MLM and Cell-level-Cloze heads.

use crate::config::ModelConfig;
use crate::embedding::{EmbeddingLayer, PlacedEmbeddingLayer};
use crate::encoding::EncodedSequence;
use tabbin_tensor::nn::{additive_mask, AttentionConfig, EncoderBlock, Linear, PlacedEncoderBlock};
use tabbin_tensor::{Graph, NodeId, ParamStore, Tensor};

/// One TabBiN model instance (the paper trains four — one per segment kind —
/// see [`crate::variants::TabBiNFamily`]).
#[derive(Debug)]
pub struct TabBiNModel {
    /// Model geometry and ablation flags.
    pub cfg: ModelConfig,
    /// All trainable parameters.
    pub store: ParamStore,
    /// The six-component embedding layer.
    pub emb: EmbeddingLayer,
    /// Transformer encoder blocks.
    pub blocks: Vec<EncoderBlock>,
    /// Masked-language-model head `[H, vocab]`.
    pub mlm_head: Linear,
    /// Cell-level-Cloze projection `[H, H]`.
    pub clc_proj: Linear,
    vocab: usize,
}

impl TabBiNModel {
    /// Builds a model with freshly initialized parameters.
    pub fn new(cfg: ModelConfig, vocab: usize, seed: u64) -> Self {
        cfg.validate();
        let mut store = ParamStore::new();
        let emb = EmbeddingLayer::new(&mut store, &cfg, vocab, seed);
        let attn_cfg = AttentionConfig { d_model: cfg.hidden, heads: cfg.heads };
        let blocks = (0..cfg.layers)
            .map(|l| {
                EncoderBlock::new(
                    &mut store,
                    &format!("enc{l}"),
                    attn_cfg,
                    cfg.ff,
                    seed ^ (l as u64 + 1),
                )
            })
            .collect();
        let mlm_head = Linear::new(&mut store, "mlm", cfg.hidden, vocab, seed ^ 0xee);
        let clc_proj = Linear::new(&mut store, "clc", cfg.hidden, cfg.hidden, seed ^ 0xef);
        Self { cfg, store, emb, blocks, mlm_head, clc_proj, vocab }
    }

    /// Vocabulary size this model was built for.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// Total trainable scalars.
    pub fn parameter_count(&self) -> usize {
        self.store.scalar_count()
    }

    /// Places the whole encoder's parameters onto `g` once, so any number of
    /// sequences can be forwarded against a single copy of the weights.
    pub fn place(&self, g: &mut Graph) -> PlacedTabBiN {
        PlacedTabBiN {
            emb: self.emb.place(g, &self.store),
            blocks: self.blocks.iter().map(|b| b.place(g, &self.store)).collect(),
            cfg: self.cfg,
        }
    }

    /// Full forward pass over a sequence with (possibly corrupted) `ids`,
    /// returning the `[n, H]` hidden states. The visibility matrix enters as
    /// the additive attention mask unless ablated (`TabBiN₁`).
    pub fn forward_ids(&self, g: &mut Graph, seq: &EncodedSequence, ids: &[u32]) -> NodeId {
        let placed = self.place(g);
        placed.forward_ids(g, seq, ids)
    }

    /// Forward pass with the sequence's own ids.
    pub fn forward(&self, g: &mut Graph, seq: &EncodedSequence) -> NodeId {
        let ids: Vec<u32> = seq.tokens.iter().map(|t| t.vocab_id).collect();
        self.forward_ids(g, seq, &ids)
    }

    /// Mean-pools hidden states over non-special tokens, producing `[1, H]`.
    /// Falls back to pooling everything if the sequence is all specials.
    pub fn pool(&self, g: &mut Graph, hidden: NodeId, seq: &EncodedSequence) -> NodeId {
        let rows: Vec<usize> =
            seq.tokens.iter().enumerate().filter(|(_, t)| !t.special).map(|(i, _)| i).collect();
        if rows.is_empty() {
            return g.mean_rows(hidden);
        }
        let sel = g.row_select(hidden, &rows);
        g.mean_rows(sel)
    }

    /// Inference-only embedding of a sequence: forward + mean pool, returning
    /// a plain `H`-vector. Returns a zero vector for empty sequences (e.g.
    /// the VMD segment of a relational table).
    pub fn embed(&self, seq: &EncodedSequence) -> Vec<f32> {
        let mut g = Graph::new();
        self.embed_into(&mut g, seq)
    }

    /// [`TabBiNModel::embed`] against a caller-provided tape, which is reset
    /// first — pair with a long-lived [`Graph`] to reuse the node arena
    /// across calls. (The bulk-inference pipeline in `tabbin_core::batch`
    /// uses the faster no-tape kernel instead; this entry point is the
    /// tape-based reference.)
    pub fn embed_into(&self, g: &mut Graph, seq: &EncodedSequence) -> Vec<f32> {
        if seq.is_empty() {
            return vec![0.0; self.cfg.hidden];
        }
        g.reset();
        let placed = self.place(g);
        let h = placed.forward(g, seq);
        let p = placed.pool(g, h, seq);
        g.value(p).data().to_vec()
    }

    /// Embeds many sequences in **one** tape pass: the model parameters are
    /// placed once and every sequence is forwarded and pooled against that
    /// single placement. Output `i` is elementwise identical to
    /// `self.embed(seqs[i])`; empty sequences yield zero vectors. The tape is
    /// reset first.
    pub fn embed_batch_into(&self, g: &mut Graph, seqs: &[&EncodedSequence]) -> Vec<Vec<f32>> {
        if seqs.is_empty() {
            return Vec::new();
        }
        g.reset();
        let placed = self.place(g);
        let pooled: Vec<Option<NodeId>> = seqs
            .iter()
            .map(|seq| {
                if seq.is_empty() {
                    None
                } else {
                    let h = placed.forward(g, seq);
                    Some(placed.pool(g, h, seq))
                }
            })
            .collect();
        pooled
            .into_iter()
            .map(|p| match p {
                Some(p) => g.value(p).data().to_vec(),
                None => vec![0.0; self.cfg.hidden],
            })
            .collect()
    }

    /// Mean of the raw token embeddings (`E_tok` rows) for a list of vocab
    /// ids — the candidate representation used by the Cell-level Cloze
    /// objective.
    pub fn token_embedding_mean(&self, ids: &[u32]) -> Vec<f32> {
        let table = self.store.value(self.emb.tok.table);
        let mut acc = vec![0.0f32; self.cfg.hidden];
        if ids.is_empty() {
            return acc;
        }
        for &id in ids {
            let row = table.row(id as usize);
            for (a, &v) in acc.iter_mut().zip(row) {
                *a += v;
            }
        }
        let inv = 1.0 / ids.len() as f32;
        for a in &mut acc {
            *a *= inv;
        }
        acc
    }
}

/// Tape-resident placement of a whole [`TabBiNModel`]: the embedding tables
/// and every encoder block, placed once. This is the unit the batched
/// pipeline forwards sequences against.
#[derive(Debug)]
pub struct PlacedTabBiN {
    emb: PlacedEmbeddingLayer,
    blocks: Vec<PlacedEncoderBlock>,
    cfg: ModelConfig,
}

impl PlacedTabBiN {
    /// Forward pass over one sequence with (possibly corrupted) `ids`.
    pub fn forward_ids(&self, g: &mut Graph, seq: &EncodedSequence, ids: &[u32]) -> NodeId {
        let mut x = self.emb.forward(g, seq, ids);
        let mask: Option<Tensor> = if self.cfg.ablation.visibility {
            Some(additive_mask(&seq.visibility()))
        } else {
            None
        };
        for block in &self.blocks {
            x = block.forward(g, x, mask.as_ref());
        }
        x
    }

    /// Forward pass with the sequence's own ids.
    pub fn forward(&self, g: &mut Graph, seq: &EncodedSequence) -> NodeId {
        let ids: Vec<u32> = seq.tokens.iter().map(|t| t.vocab_id).collect();
        self.forward_ids(g, seq, &ids)
    }

    /// Mean-pools hidden states over non-special tokens, producing `[1, H]`;
    /// falls back to pooling everything if the sequence is all specials.
    pub fn pool(&self, g: &mut Graph, hidden: NodeId, seq: &EncodedSequence) -> NodeId {
        let rows: Vec<usize> =
            seq.tokens.iter().enumerate().filter(|(_, t)| !t.special).map(|(i, _)| i).collect();
        if rows.is_empty() {
            return g.mean_rows(hidden);
        }
        let sel = g.row_select(hidden, &rows);
        g.mean_rows(sel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SegmentKind;
    use crate::encoding::encode_segment;
    use tabbin_table::samples::{figure1_table, table2_relational};
    use tabbin_tokenizer::Tokenizer;
    use tabbin_typeinfer::TypeTagger;

    fn fixtures() -> (Tokenizer, TypeTagger, ModelConfig) {
        let tok = Tokenizer::train(
            ["name age job sam ava kim engineer lawyer scientist overall survival months"],
            500,
            1,
        );
        (tok, TypeTagger::new(), ModelConfig::tiny())
    }

    #[test]
    fn forward_and_pool_shapes() {
        let (tok, tagger, cfg) = fixtures();
        let model = TabBiNModel::new(cfg, tok.vocab_size(), 3);
        let seq = encode_segment(&table2_relational(), SegmentKind::DataRow, &tok, &tagger, &cfg);
        let mut g = Graph::new();
        let h = model.forward(&mut g, &seq);
        assert_eq!(g.value(h).shape(), &[seq.len(), cfg.hidden]);
        let p = model.pool(&mut g, h, &seq);
        assert_eq!(g.value(p).shape(), &[1, cfg.hidden]);
    }

    #[test]
    fn embed_batch_into_matches_per_sequence_embed() {
        // The tape-batched path places parameters once and must reproduce
        // the per-sequence tape embedding bit for bit (same op order).
        let (tok, tagger, cfg) = fixtures();
        let model = TabBiNModel::new(cfg, tok.vocab_size(), 3);
        let seqs: Vec<_> = [figure1_table(), table2_relational()]
            .iter()
            .flat_map(|t| {
                crate::config::SegmentKind::ALL.map(|k| encode_segment(t, k, &tok, &tagger, &cfg))
            })
            .collect();
        let refs: Vec<&_> = seqs.iter().collect();
        let mut g = Graph::new();
        let batched = model.embed_batch_into(&mut g, &refs);
        assert_eq!(batched.len(), seqs.len());
        for (s, b) in seqs.iter().zip(&batched) {
            assert_eq!(&model.embed(s), b);
        }
    }

    #[test]
    fn embed_is_deterministic() {
        let (tok, tagger, cfg) = fixtures();
        let model = TabBiNModel::new(cfg, tok.vocab_size(), 3);
        let seq = encode_segment(&figure1_table(), SegmentKind::DataRow, &tok, &tagger, &cfg);
        assert_eq!(model.embed(&seq), model.embed(&seq));
    }

    #[test]
    fn embed_of_empty_sequence_is_zero() {
        let (tok, tagger, cfg) = fixtures();
        let model = TabBiNModel::new(cfg, tok.vocab_size(), 3);
        // Relational tables have no VMD; the VMD segment encodes empty.
        let seq = encode_segment(&table2_relational(), SegmentKind::Vmd, &tok, &tagger, &cfg);
        // Only a [CLS] token, so pooling falls back; or fully empty.
        let emb = model.embed(&seq);
        assert_eq!(emb.len(), cfg.hidden);
    }

    #[test]
    fn visibility_ablation_changes_hidden_states() {
        let (tok, tagger, cfg) = fixtures();
        let model = TabBiNModel::new(cfg, tok.vocab_size(), 3);
        let seq = encode_segment(&table2_relational(), SegmentKind::DataRow, &tok, &tagger, &cfg);
        let full = model.embed(&seq);
        let mut ablated = TabBiNModel::new(
            cfg.with_ablation(crate::config::AblationFlags::no_visibility()),
            tok.vocab_size(),
            3,
        );
        // Same weights: copy the store so only the mask differs.
        ablated.store = model.store.clone();
        let without = ablated.embed(&seq);
        assert_ne!(full, without);
    }

    #[test]
    fn different_seeds_give_different_models() {
        let (tok, tagger, cfg) = fixtures();
        let seq = encode_segment(&table2_relational(), SegmentKind::DataRow, &tok, &tagger, &cfg);
        let a = TabBiNModel::new(cfg, tok.vocab_size(), 1).embed(&seq);
        let b = TabBiNModel::new(cfg, tok.vocab_size(), 2).embed(&seq);
        assert_ne!(a, b);
    }

    #[test]
    fn token_embedding_mean_averages_rows() {
        let (tok, _, cfg) = fixtures();
        let model = TabBiNModel::new(cfg, tok.vocab_size(), 3);
        let a = model.token_embedding_mean(&[6]);
        let b = model.token_embedding_mean(&[7]);
        let ab = model.token_embedding_mean(&[6, 7]);
        for i in 0..a.len() {
            assert!((ab[i] - 0.5 * (a[i] + b[i])).abs() < 1e-6);
        }
    }

    #[test]
    fn parameter_count_is_positive_and_scales() {
        let (tok, _, cfg) = fixtures();
        let small = TabBiNModel::new(cfg, tok.vocab_size(), 3).parameter_count();
        let big_cfg = ModelConfig { layers: 2, ..cfg };
        let big = TabBiNModel::new(big_cfg, tok.vocab_size(), 3).parameter_count();
        assert!(small > 0);
        assert!(big > small);
    }
}
