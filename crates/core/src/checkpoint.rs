//! Checkpointing: persist and restore a trained [`TabBiNModel`] or a whole
//! [`TabBiNFamily`] (parameters + tokenizer + config) so pre-training cost
//! can be paid once per corpus.

use crate::config::ModelConfig;
use crate::model::TabBiNModel;
use crate::variants::TabBiNFamily;
use serde::{Deserialize, Serialize};
use tabbin_tensor::serialize::{load_params, save_params, DecodeError};
use tabbin_tokenizer::Tokenizer;
use tabbin_typeinfer::TypeTagger;

/// Errors raised while restoring a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// The serialized JSON envelope is malformed.
    Envelope(String),
    /// A parameter blob failed to decode.
    Params(DecodeError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Envelope(e) => write!(f, "bad checkpoint envelope: {e}"),
            CheckpointError::Params(e) => write!(f, "bad parameter blob: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

#[derive(Serialize, Deserialize)]
struct FamilyEnvelope {
    cfg: ModelConfig,
    vocab: usize,
    tokenizer: Tokenizer,
    /// Parameter blobs for row / column / hmd / vmd models.
    params: [Vec<u8>; 4],
}

/// Serializes a family (models + tokenizer + config) to bytes.
pub fn save_family(family: &TabBiNFamily) -> Vec<u8> {
    let envelope = FamilyEnvelope {
        cfg: family.cfg,
        vocab: family.tokenizer.vocab_size(),
        tokenizer: family.tokenizer.clone(),
        params: [
            save_params(&family.row.store),
            save_params(&family.col.store),
            save_params(&family.hmd.store),
            save_params(&family.vmd.store),
        ],
    };
    serde_json::to_vec(&envelope).expect("family serialization cannot fail")
}

/// Restores a family from bytes produced by [`save_family`].
pub fn load_family(bytes: &[u8]) -> Result<TabBiNFamily, CheckpointError> {
    let envelope: FamilyEnvelope =
        serde_json::from_slice(bytes).map_err(|e| CheckpointError::Envelope(e.to_string()))?;
    let mk = |blob: &[u8], seed: u64| -> Result<TabBiNModel, CheckpointError> {
        let mut m = TabBiNModel::new(envelope.cfg, envelope.vocab, seed);
        m.store = load_params(blob).map_err(CheckpointError::Params)?;
        Ok(m)
    };
    Ok(TabBiNFamily {
        row: mk(&envelope.params[0], 1)?,
        col: mk(&envelope.params[1], 2)?,
        hmd: mk(&envelope.params[2], 3)?,
        vmd: mk(&envelope.params[3], 4)?,
        tokenizer: envelope.tokenizer,
        tagger: TypeTagger::new(),
        cfg: envelope.cfg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretrain::PretrainOptions;
    use tabbin_table::samples::{figure1_table, table2_relational};

    #[test]
    fn family_checkpoint_roundtrip_preserves_embeddings() {
        let tables = vec![figure1_table(), table2_relational()];
        let mut fam = TabBiNFamily::new(&tables, ModelConfig::tiny(), 7);
        fam.pretrain(&tables, &PretrainOptions { steps: 5, batch: 2, ..Default::default() });
        let before_tbl = fam.embed_table(&tables[0]);
        let before_col = fam.embed_colcomp(&tables[1], 0);

        let bytes = save_family(&fam);
        let restored = load_family(&bytes).expect("roundtrip");
        assert_eq!(restored.embed_table(&tables[0]), before_tbl);
        assert_eq!(restored.embed_colcomp(&tables[1], 0), before_col);
    }

    #[test]
    fn rejects_garbage_envelope() {
        assert!(matches!(
            load_family(b"not json at all").unwrap_err(),
            CheckpointError::Envelope(_)
        ));
    }

    #[test]
    fn checkpoint_is_self_contained() {
        // The restored family must embed *new* text without access to the
        // original corpus (tokenizer travels with the checkpoint).
        let tables = vec![figure1_table()];
        let fam = TabBiNFamily::new(&tables, ModelConfig::tiny(), 9);
        let restored = load_family(&save_family(&fam)).unwrap();
        assert_eq!(fam.embed_entity("overall survival"), restored.embed_entity("overall survival"));
    }
}
