//! Self-supervised pre-training (§3.3): Masked Language Modeling plus
//! Cell-level Cloze.
//!
//! * **MLM** — 15% of non-special tokens are selected; of those, 80% are
//!   replaced with `[MASK]`, 10% with a random vocabulary token, 10% kept.
//!   The model predicts the original id at each selected position.
//! * **CLC** — one whole cell is masked (every token becomes `[MASK]`); the
//!   pooled hidden state of the masked span must select the original cell
//!   among all cells of the sequence by dot-product against their mean token
//!   embeddings.

use crate::encoding::EncodedSequence;
use crate::model::TabBiNModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tabbin_tensor::optim::Adam;
use tabbin_tensor::{Graph, Tensor};
use tabbin_tokenizer::SpecialToken;

/// Pre-training hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct PretrainOptions {
    /// Optimization steps.
    pub steps: usize,
    /// Sequences per step.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Fraction of tokens selected for MLM.
    pub mask_prob: f64,
    /// Weight of the CLC loss relative to MLM.
    pub clc_weight: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PretrainOptions {
    fn default() -> Self {
        Self { steps: 200, batch: 4, lr: 1e-3, mask_prob: 0.15, clc_weight: 0.5, seed: 17 }
    }
}

/// Per-step training telemetry.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepStats {
    /// Combined loss.
    pub loss: f32,
    /// MLM component.
    pub mlm_loss: f32,
    /// CLC component (0 when the step had no eligible cell).
    pub clc_loss: f32,
}

/// Runs pre-training of `model` over `sequences`, returning per-step stats.
///
/// Sequences too short to mask are skipped; if every sequence is degenerate
/// the function returns an empty curve without touching the parameters.
pub fn pretrain(
    model: &mut TabBiNModel,
    sequences: &[EncodedSequence],
    opts: &PretrainOptions,
) -> Vec<StepStats> {
    let usable: Vec<&EncodedSequence> =
        sequences.iter().filter(|s| s.tokens.iter().any(|t| !t.special)).collect();
    if usable.is_empty() || opts.steps == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut opt = Adam::new(opts.lr);
    let mut curve = Vec::with_capacity(opts.steps);
    // One arena for the whole run: each step clears and reuses the tape
    // instead of reallocating it (see `Graph::reset`).
    let mut g = Graph::new();
    for _ in 0..opts.steps {
        let mut stats = StepStats::default();
        let mut contributed = 0usize;
        for _ in 0..opts.batch {
            let seq = usable[rng.random_range(0..usable.len())];
            if let Some(s) = train_step(model, seq, opts, &mut rng, &mut g) {
                stats.loss += s.loss;
                stats.mlm_loss += s.mlm_loss;
                stats.clc_loss += s.clc_loss;
                contributed += 1;
            }
        }
        if contributed > 0 {
            let inv = 1.0 / contributed as f32;
            stats.loss *= inv;
            stats.mlm_loss *= inv;
            stats.clc_loss *= inv;
            model.store.clip_grad_norm(5.0);
            opt.step(&mut model.store);
            model.store.zero_grads();
        }
        curve.push(stats);
    }
    curve
}

/// One forward/backward on one sequence; gradients accumulate into the
/// model's store. The caller-provided tape is reset and reused. Returns
/// `None` when nothing could be masked.
fn train_step(
    model: &mut TabBiNModel,
    seq: &EncodedSequence,
    opts: &PretrainOptions,
    rng: &mut StdRng,
    g: &mut Graph,
) -> Option<StepStats> {
    let n = seq.len();
    let vocab = model.vocab_size() as u32;
    let mut ids: Vec<u32> = seq.tokens.iter().map(|t| t.vocab_id).collect();
    let mut targets = vec![-1i64; n];

    // --- MLM corruption ---
    let candidates: Vec<usize> =
        seq.tokens.iter().enumerate().filter(|(_, t)| !t.special).map(|(i, _)| i).collect();
    let mut masked_any = false;
    for &i in &candidates {
        if rng.random::<f64>() >= opts.mask_prob {
            continue;
        }
        targets[i] = seq.tokens[i].vocab_id as i64;
        masked_any = true;
        let r: f64 = rng.random();
        if r < 0.8 {
            ids[i] = SpecialToken::Mask.id();
        } else if r < 0.9 {
            ids[i] = rng.random_range(SpecialToken::ALL.len() as u32..vocab);
        } // else keep original id
    }
    if !masked_any {
        // Guarantee progress: mask one random candidate.
        let i = candidates[rng.random_range(0..candidates.len())];
        targets[i] = seq.tokens[i].vocab_id as i64;
        ids[i] = SpecialToken::Mask.id();
        masked_any = true;
    }
    debug_assert!(masked_any);

    // --- CLC: mask one whole cell when the sequence has at least 2 cells ---
    let cells = seq.cell_token_indices();
    let eligible: Vec<usize> = (0..cells.len()).filter(|&c| !cells[c].is_empty()).collect();
    let clc_cell = if eligible.len() >= 2 {
        let c = eligible[rng.random_range(0..eligible.len())];
        for &i in &cells[c] {
            ids[i] = SpecialToken::Mask.id();
            targets[i] = seq.tokens[i].vocab_id as i64; // cell tokens also join MLM
        }
        Some(c)
    } else {
        None
    };

    g.reset();
    let hidden = model.forward_ids(g, seq, &ids);

    // MLM loss on the selected rows only.
    let masked_rows: Vec<usize> = (0..n).filter(|&i| targets[i] >= 0).collect();
    let sel = g.row_select(hidden, &masked_rows);
    let logits = model.mlm_head.forward(g, &model.store, sel);
    let sel_targets: Vec<i64> = masked_rows.iter().map(|&i| targets[i]).collect();
    let mlm_loss = g.cross_entropy_rows(logits, &sel_targets);

    // CLC loss: pooled masked-cell state vs candidate cell token-embedding
    // means.
    let (loss, clc_value) = match clc_cell {
        Some(c) => {
            let span = g.row_select(hidden, &cells[c]);
            let pooled = g.mean_rows(span);
            let proj = model.clc_proj.forward(g, &model.store, pooled);
            let mut cand = Tensor::zeros(&[eligible.len(), model.cfg.hidden]);
            let mut target_idx = 0i64;
            for (k, &cell) in eligible.iter().enumerate() {
                let tok_ids: Vec<u32> =
                    cells[cell].iter().map(|&i| seq.tokens[i].vocab_id).collect();
                let mean = model.token_embedding_mean(&tok_ids);
                cand.row_mut(k).copy_from_slice(&mean);
                if cell == c {
                    target_idx = k as i64;
                }
            }
            let cand_in = g.input(cand);
            let scores = g.matmul_trans_b(proj, cand_in); // [1, n_candidates]
            let clc_loss = g.cross_entropy_rows(scores, &[target_idx]);
            let weighted = g.scalar_mul(clc_loss, opts.clc_weight);
            let total = g.add(mlm_loss, weighted);
            (total, g.value(clc_loss).data()[0])
        }
        None => (mlm_loss, 0.0),
    };

    let stats = StepStats {
        loss: g.value(loss).data()[0],
        mlm_loss: g.value(mlm_loss).data()[0],
        clc_loss: clc_value,
    };
    g.backward(loss);
    g.accumulate_grads(&mut model.store);
    Some(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, SegmentKind};
    use crate::encoding::encode_segment;
    use tabbin_table::samples::{figure1_table, table1_sample, table2_relational};
    use tabbin_tokenizer::Tokenizer;
    use tabbin_typeinfer::TypeTagger;

    fn sequences(cfg: &ModelConfig) -> (Tokenizer, Vec<EncodedSequence>) {
        let tables = vec![figure1_table(), table1_sample(), table2_relational()];
        let mut texts = Vec::new();
        for t in &tables {
            texts.push(t.caption.clone());
            for (_, _, c) in t.data.iter_indexed() {
                texts.push(c.render());
            }
            for (l, _) in t.hmd.all_labels() {
                texts.push(l.to_string());
            }
        }
        let tok = Tokenizer::train(texts.iter().map(String::as_str), 2000, 1);
        let tagger = TypeTagger::new();
        let seqs: Vec<EncodedSequence> = tables
            .iter()
            .map(|t| encode_segment(t, SegmentKind::DataRow, &tok, &tagger, cfg))
            .collect();
        (tok, seqs)
    }

    #[test]
    fn loss_decreases_over_training() {
        let cfg = ModelConfig::tiny();
        let (tok, seqs) = sequences(&cfg);
        let mut model = TabBiNModel::new(cfg, tok.vocab_size(), 5);
        let opts = PretrainOptions { steps: 40, batch: 2, lr: 2e-3, ..PretrainOptions::default() };
        let curve = pretrain(&mut model, &seqs, &opts);
        assert_eq!(curve.len(), 40);
        let first: f32 = curve[..5].iter().map(|s| s.loss).sum::<f32>() / 5.0;
        let last: f32 = curve[35..].iter().map(|s| s.loss).sum::<f32>() / 5.0;
        assert!(last < first, "pre-training loss did not decrease: first {first}, last {last}");
    }

    #[test]
    fn pretraining_changes_embeddings() {
        let cfg = ModelConfig::tiny();
        let (tok, seqs) = sequences(&cfg);
        let mut model = TabBiNModel::new(cfg, tok.vocab_size(), 5);
        let before = model.embed(&seqs[0]);
        let opts = PretrainOptions { steps: 5, ..PretrainOptions::default() };
        pretrain(&mut model, &seqs, &opts);
        let after = model.embed(&seqs[0]);
        assert_ne!(before, after);
    }

    #[test]
    fn empty_corpus_is_a_noop() {
        let cfg = ModelConfig::tiny();
        let mut model = TabBiNModel::new(cfg, 100, 5);
        let curve = pretrain(&mut model, &[], &PretrainOptions::default());
        assert!(curve.is_empty());
    }

    #[test]
    fn stats_components_are_finite() {
        let cfg = ModelConfig::tiny();
        let (tok, seqs) = sequences(&cfg);
        let mut model = TabBiNModel::new(cfg, tok.vocab_size(), 5);
        let opts = PretrainOptions { steps: 3, ..PretrainOptions::default() };
        for s in pretrain(&mut model, &seqs, &opts) {
            assert!(s.loss.is_finite());
            assert!(s.mlm_loss.is_finite());
            assert!(s.clc_loss.is_finite());
        }
    }
}
