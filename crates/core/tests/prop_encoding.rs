//! Property tests on the encoding layer: any table the corpus can produce
//! must encode within bounds and with consistent labels.

use proptest::prelude::*;
use tabbin_core::config::{ModelConfig, SegmentKind};
use tabbin_core::encoding::{encode_column, encode_row, encode_segment, encode_text, NO_CELL};
use tabbin_table::{CellValue, Table, Unit};
use tabbin_tokenizer::Tokenizer;
use tabbin_typeinfer::TypeTagger;

fn tok() -> Tokenizer {
    Tokenizer::train(
        [
            "alpha beta gamma delta epsilon zeta eta theta months years percent",
            "overall survival hazard ratio cohort treatment outcome value",
        ],
        2000,
        1,
    )
}

fn cell_value() -> impl Strategy<Value = CellValue> {
    prop_oneof![
        "[a-z ]{0,20}".prop_map(CellValue::text),
        (-1e6f64..1e6).prop_map(|v| CellValue::number(v, Some(Unit::Time))),
        (0f64..50.0).prop_map(|v| CellValue::range(v, v + 1.0, None)),
        Just(CellValue::Empty),
    ]
}

fn arb_table() -> impl Strategy<Value = Table> {
    (1..4usize, 1..4usize).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(proptest::collection::vec(cell_value(), cols), rows).prop_map(
            move |grid| {
                let labels: Vec<String> = (0..cols).map(|i| format!("attr{i}")).collect();
                let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
                let mut b = Table::builder("prop").hmd_flat(&refs);
                for row in grid {
                    b = b.row(row);
                }
                b.build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_segments_encode_within_bounds(t in arb_table()) {
        let tok = tok();
        let tagger = TypeTagger::new();
        let cfg = ModelConfig::tiny();
        for kind in SegmentKind::ALL {
            let seq = encode_segment(&t, kind, &tok, &tagger, &cfg);
            prop_assert!(seq.len() <= cfg.max_seq);
            for et in &seq.tokens {
                prop_assert!((et.vocab_id as usize) < tok.vocab_size());
                prop_assert!(et.cell_pos < cfg.max_cell_tokens);
                prop_assert!(et.sem_type < tabbin_typeinfer::SemType::COUNT);
                if et.special {
                    prop_assert_eq!(et.cell_id, NO_CELL);
                } else {
                    prop_assert!(et.cell_id < seq.n_cells);
                }
            }
        }
    }

    #[test]
    fn visibility_matrix_is_square(t in arb_table()) {
        let tok = tok();
        let tagger = TypeTagger::new();
        let cfg = ModelConfig::tiny();
        let seq = encode_segment(&t, SegmentKind::DataRow, &tok, &tagger, &cfg);
        let vis = seq.visibility();
        prop_assert_eq!(vis.len(), seq.len());
        for row in &vis {
            prop_assert_eq!(row.len(), seq.len());
        }
    }

    #[test]
    fn row_and_column_encodings_address_correctly(t in arb_table()) {
        let tok = tok();
        let tagger = TypeTagger::new();
        let cfg = ModelConfig::tiny();
        for j in 0..t.n_cols() {
            let seq = encode_column(&t, j, &tok, &tagger, &cfg);
            for et in seq.tokens.iter().filter(|e| !e.special) {
                prop_assert_eq!(et.col, j as u32);
            }
        }
        for i in 0..t.n_rows() {
            let seq = encode_row(&t, i, &tok, &tagger, &cfg);
            for et in seq.tokens.iter().filter(|e| !e.special) {
                prop_assert_eq!(et.row, i as u32);
            }
        }
    }

    #[test]
    fn text_encoding_never_panics(s in ".{0,60}") {
        let tok = tok();
        let tagger = TypeTagger::new();
        let cfg = ModelConfig::tiny();
        let seq = encode_text(&s, &tok, &tagger, &cfg);
        prop_assert!(!seq.is_empty(), "at least [CLS]");
        prop_assert!(seq.len() <= cfg.max_seq);
    }

    #[test]
    fn cell_token_indices_are_disjoint(t in arb_table()) {
        let tok = tok();
        let tagger = TypeTagger::new();
        let cfg = ModelConfig::tiny();
        let seq = encode_segment(&t, SegmentKind::DataRow, &tok, &tagger, &cfg);
        let cells = seq.cell_token_indices();
        let mut seen = std::collections::HashSet::new();
        for cell in &cells {
            for &i in cell {
                prop_assert!(seen.insert(i), "token {i} owned by two cells");
            }
        }
    }
}
