//! Property tests pinning the batched pipeline's contract: for any table the
//! corpus shape allows, the fused batch path must agree elementwise (within
//! 1e-5) with the per-table tape path, for whole-table composites, per-column
//! composites, and entity texts alike.

use proptest::prelude::*;
use tabbin_core::batch::BatchEncoder;
use tabbin_core::config::ModelConfig;
use tabbin_core::variants::TabBiNFamily;
use tabbin_table::{CellValue, Table, Unit};

/// The agreed bound between the fused no-tape kernel and the autograd tape
/// (float sums are reassociated slightly between the two).
const TOL: f32 = 1e-5;

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

fn cell_value() -> impl Strategy<Value = CellValue> {
    prop_oneof![
        "[a-z ]{0,16}".prop_map(CellValue::text),
        (-1e6f64..1e6).prop_map(|v| CellValue::number(v, Some(Unit::Time))),
        (0f64..50.0).prop_map(|v| CellValue::range(v, v + 1.5, None)),
        (0f64..10.0, 0f64..2.0).prop_map(|(m, s)| CellValue::gaussian(m, s, Some(Unit::Stats))),
        Just(CellValue::Empty),
    ]
}

fn arb_table() -> impl Strategy<Value = Table> {
    (1..4usize, 1..4usize).prop_flat_map(|(rows, cols)| {
        (
            proptest::collection::vec(proptest::collection::vec(cell_value(), cols), rows),
            prop_oneof![Just(true), Just(false)],
        )
            .prop_map(move |(grid, with_vmd)| {
                let labels: Vec<String> = (0..cols).map(|i| format!("attr{i}")).collect();
                let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
                let mut b = Table::builder("prop batch").hmd_flat(&refs);
                if with_vmd {
                    let vlabels: Vec<String> = (0..rows).map(|i| format!("row{i}")).collect();
                    let vrefs: Vec<&str> = vlabels.iter().map(String::as_str).collect();
                    b = b.vmd_flat(&vrefs);
                }
                for row in grid {
                    b = b.row(row);
                }
                b.build()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn forward_batch_matches_per_table_embedding(
        tables in proptest::collection::vec(arb_table(), 1..5)
    ) {
        let fam = TabBiNFamily::new(&tables, ModelConfig::tiny(), 41);
        let batched = fam.embed_tables(&tables);
        prop_assert_eq!(batched.len(), tables.len());
        for (t, b) in tables.iter().zip(&batched) {
            let single = fam.embed_table(t);
            let diff = max_abs_diff(&single, b);
            prop_assert!(diff < TOL, "table diverged by {}", diff);
        }
    }

    #[test]
    fn column_batch_matches_per_column_embedding(t in arb_table()) {
        let tables = vec![t];
        let fam = TabBiNFamily::new(&tables, ModelConfig::tiny(), 43);
        let cols = BatchEncoder::new(&fam).embed_columns(&tables[0]);
        prop_assert_eq!(cols.len(), tables[0].n_cols());
        for (j, c) in cols.iter().enumerate() {
            let single = fam.embed_colcomp(&tables[0], j);
            let diff = max_abs_diff(&single, c);
            prop_assert!(diff < TOL, "column {} diverged by {}", j, diff);
        }
    }

    #[test]
    fn entity_batch_matches_per_entity_embedding(
        texts in proptest::collection::vec("[a-z]{1,12}", 1..6)
    ) {
        let tables = vec![tabbin_table::samples::figure1_table()];
        let fam = TabBiNFamily::new(&tables, ModelConfig::tiny(), 47);
        let batch = fam.embed_entities(&texts);
        for (text, b) in texts.iter().zip(&batch) {
            let single = fam.embed_entity(text);
            let diff = max_abs_diff(&single, b);
            prop_assert!(diff < TOL, "entity {:?} diverged by {}", text, diff);
        }
    }
}
