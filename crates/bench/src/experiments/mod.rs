//! One module per paper table/figure. Every module exposes
//! `run(&ExpConfig) -> String` returning the formatted result block.

pub mod figures;
pub mod table03;
pub mod table04;
pub mod table05;
pub mod table06;
pub mod table07;
pub mod table08;
pub mod table09;
pub mod table10;
pub mod table11;
pub mod table12;
pub mod table13;
pub mod table14;

use crate::bundle::Bundle;
use crate::harness::{eval_cc, eval_cc_batch, eval_tc, eval_tc_batch};
use tabbin_eval::clustering::RetrievalEval;

/// The standard model lineup evaluated on column clustering.
pub fn cc_lineup(
    bundle: &Bundle,
    numeric: bool,
    k: usize,
    max_q: usize,
) -> Vec<(String, RetrievalEval)> {
    let tok = &bundle.family.tokenizer;
    vec![
        (
            "TabBiN".to_string(),
            // Batched path: all of a table's columns in one pass.
            eval_cc_batch(&bundle.corpus, numeric, k, max_q, |t, cols| {
                bundle.family.embed_columns_subset(t, cols)
            }),
        ),
        (
            "TUTA".to_string(),
            eval_cc(&bundle.corpus, numeric, k, max_q, |t, j| bundle.tuta.embed_column(t, j, tok)),
        ),
        (
            "BioBERT".to_string(),
            eval_cc(&bundle.corpus, numeric, k, max_q, |t, j| bundle.bert.embed_column(tok, t, j)),
        ),
        (
            "Word2Vec".to_string(),
            eval_cc(&bundle.corpus, numeric, k, max_q, |t, j| {
                let mut text =
                    t.hmd.leaf_labels().get(j).map(|s| s.to_string()).unwrap_or_default();
                for c in t.column_text(j) {
                    text.push(' ');
                    text.push_str(&c);
                }
                bundle.w2v.embed_text(&text)
            }),
        ),
    ]
}

/// The standard model lineup evaluated on table clustering over a subset.
pub fn tc_lineup(
    bundle: &Bundle,
    k: usize,
    subset: impl Fn(&tabbin_corpus::LabeledTable) -> bool + Copy,
) -> Vec<(String, RetrievalEval)> {
    let tok = &bundle.family.tokenizer;
    vec![
        (
            "TabBiN".to_string(),
            // Batched path: parameters placed once for the whole subset.
            eval_tc_batch(&bundle.corpus, k, subset, |ts| bundle.family.embed_table_refs(ts)),
        ),
        (
            "TUTA".to_string(),
            eval_tc(&bundle.corpus, k, subset, |t| bundle.tuta.embed_table(t, tok)),
        ),
        (
            "BioBERT".to_string(),
            eval_tc(&bundle.corpus, k, subset, |t| bundle.bert.embed_table(tok, t)),
        ),
        (
            "Word2Vec".to_string(),
            eval_tc(&bundle.corpus, k, subset, |t| {
                let mut text = t.caption.clone();
                for (l, _) in t.hmd.all_labels() {
                    text.push(' ');
                    text.push_str(l);
                }
                for i in 0..t.n_rows() {
                    for c in t.row_text(i) {
                        text.push(' ');
                        text.push_str(&c);
                    }
                }
                bundle.w2v.embed_text(&text)
            }),
        ),
    ]
}
