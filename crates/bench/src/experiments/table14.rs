//! Table 14: MAP/MRR for CC and TC with LLMs ± RAG (CancerKG and CovidKG)
//! against TabBiN.
//!
//! The LLM rows come from the calibrated behavioral simulator (see
//! `tabbin_baselines::llm_rag` and DESIGN.md): offline reproduction cannot
//! call GPT-4/Llama2, so the simulator reproduces the paper's reported
//! signature — RAG lifts quality; RAG+GPT-4 reaches MRR ≈ 1.0 while TabBiN
//! keeps the MAP lead.

use crate::bundle::{Bundle, ExpConfig};
use crate::harness::{collect_columns, eval_cc_batch, eval_tc_batch, format_table, sample_queries};
use tabbin_baselines::llm_rag::{LlmRagSim, LlmTier};
use tabbin_corpus::Dataset;

/// Runs the LLM comparison.
pub fn run(cfg: &ExpConfig) -> String {
    let sims = [
        LlmRagSim::new(LlmTier::Gpt2, false),
        LlmRagSim::new(LlmTier::Llama2, false),
        LlmRagSim::new(LlmTier::Llama2, true),
        LlmRagSim::new(LlmTier::Gpt35, true),
        LlmRagSim::new(LlmTier::Gpt4, true),
    ];
    let mut rows = Vec::new();
    for ds in [Dataset::CancerKg, Dataset::CovidKg] {
        let bundle = Bundle::train(ds, cfg);

        // CC labels: textual columns; TC labels: topics.
        let cols = collect_columns(&bundle.corpus, false);
        let cc_labels: Vec<u32> = cols.iter().map(|c| c.sem).collect();
        let cc_queries: Vec<usize> = sample_queries(cc_labels.len(), cfg.max_queries)
            .into_iter()
            .filter(|&q| cc_labels.iter().enumerate().any(|(i, &l)| i != q && l == cc_labels[q]))
            .collect();
        let tc_labels: Vec<String> = bundle.corpus.tables.iter().map(|t| t.topic.clone()).collect();
        let tc_queries: Vec<usize> = sample_queries(tc_labels.len(), cfg.max_queries).to_vec();

        for sim in &sims {
            let (cm, cr) = sim.evaluate(&cc_labels, &cc_queries, cfg.k, cfg.seed ^ 0x14);
            let (tm, tr) = sim.evaluate(&tc_labels, &tc_queries, cfg.k, cfg.seed ^ 0x15);
            rows.push(vec![
                ds.name().to_string(),
                sim.label(),
                format!("{cm:.2}/{cr:.2}"),
                format!("{tm:.2}/{tr:.2}"),
            ]);
        }
        // TabBiN reference rows (measured, not simulated).
        let cc = eval_cc_batch(&bundle.corpus, false, cfg.k, cfg.max_queries, |t, cols| {
            bundle.family.embed_columns_subset(t, cols)
        });
        let tc =
            eval_tc_batch(&bundle.corpus, cfg.k, |_| true, |ts| bundle.family.embed_table_refs(ts));
        rows.push(vec![ds.name().to_string(), "TabBiN".to_string(), cc.render(), tc.render()]);
    }
    format_table(
        "Table 14 — MAP/MRR for CC and TC with LLMs ± RAG vs TabBiN",
        &["dataset", "model", "CC MAP/MRR", "TC MAP/MRR"],
        &rows,
    )
}
