//! Figures 1–5: structural illustrations regenerated as text.

use crate::bundle::ExpConfig;
use crate::harness::format_table;
use tabbin_core::config::{ModelConfig, SegmentKind};
use tabbin_core::encoding::encode_segment;
use tabbin_core::model::TabBiNModel;
use tabbin_core::variants::{train_tokenizer, TabBiNFamily};
use tabbin_table::coords::assign_coordinates;
use tabbin_table::samples::{figure1_table, table1_sample};
use tabbin_tokenizer::SpecialToken;
use tabbin_typeinfer::TypeTagger;

/// Figure 1: bi-dimensional coordinates of the colorectal-cancer table.
pub fn figure1(_cfg: &ExpConfig) -> String {
    let t = figure1_table();
    let coords = assign_coordinates(&t);
    let mut rows = Vec::new();
    let hmd_paths = t.hmd.leaf_label_paths();
    let vmd_paths = t.vmd.leaf_label_paths();
    for a in &coords.data {
        let cell = t.data.get(a.row, a.col);
        rows.push(vec![
            vmd_paths[a.row].join(" -> "),
            hmd_paths[a.col].join(" -> "),
            cell.render(),
            a.coord.render(),
        ]);
    }
    // Nested-table coordinates for the cell hosting a nested table.
    let mut out = format_table(
        &format!("Figure 1 — Bi-dimensional coordinates for: {}", t.caption),
        &["vertical path", "horizontal path", "cell", "coordinate"],
        &rows,
    );
    for (host, inner) in tabbin_table::coords::nested_tables_with_coords(&t, &coords) {
        let nested = tabbin_table::coords::nested_coordinates(&host, inner);
        let nrows: Vec<Vec<String>> = nested
            .iter()
            .map(|a| {
                vec![
                    inner.data.get(a.row, a.col).render(),
                    format!(
                        "({};{}) nested ({}, {})",
                        a.coord.vertical.render(),
                        a.coord.horizontal.render(),
                        a.coord.nested.0,
                        a.coord.nested.1
                    ),
                ]
            })
            .collect();
        out.push('\n');
        out.push_str(&format_table(
            &format!("Nested table at host {}:", host.render()),
            &["nested cell", "coordinate"],
            &nrows,
        ));
    }
    out
}

/// Figure 2: architecture summary with per-component parameter counts.
pub fn figure2(_cfg: &ExpConfig) -> String {
    let tables = vec![figure1_table(), table1_sample()];
    let tok = train_tokenizer(&tables);
    let cfg = ModelConfig::default();
    let model = TabBiNModel::new(cfg, tok.vocab_size(), 1);
    let mut per_prefix: std::collections::BTreeMap<String, usize> =
        std::collections::BTreeMap::new();
    for (id, name) in model.store.iter_ids() {
        let prefix = name.split('.').take(2).collect::<Vec<_>>().join(".");
        *per_prefix.entry(prefix).or_insert(0) += model.store.value(id).len();
    }
    let rows: Vec<Vec<String>> =
        per_prefix.into_iter().map(|(k, v)| vec![k, v.to_string()]).collect();
    let mut out = format_table(
        &format!(
            "Figure 2 — TabBiN architecture (H={}, layers={}, heads={}, total {} parameters)",
            cfg.hidden,
            cfg.layers,
            cfg.heads,
            model.parameter_count()
        ),
        &["component", "parameters"],
        &rows,
    );
    out.push_str(
        "\nEmbedding layer (read bottom-to-top as in the paper): E_tok + E_num + E_cpos \
         + E_tpos + E_type + E_fmt -> LayerNorm -> N x [visibility-masked MHA -> FFN] \
         -> MLM / CLC heads\n",
    );
    out
}

/// Figure 3: the encoded representation of Table 1 in the embedding layer.
pub fn figure3(_cfg: &ExpConfig) -> String {
    let t = table1_sample();
    let tables = vec![t.clone()];
    let tok = train_tokenizer(&tables);
    let tagger = TypeTagger::new();
    let cfg = ModelConfig::default();
    let seq = encode_segment(&t, SegmentKind::DataRow, &tok, &tagger, &cfg);
    let mut rows = Vec::new();
    for et in seq.tokens.iter().take(40) {
        let token_text = if et.vocab_id == SpecialToken::Val.id() {
            "[VAL]".to_string()
        } else {
            tok.vocab().token_of(et.vocab_id).unwrap_or("?").to_string()
        };
        let number = match et.value {
            Some(v) => {
                let f = tabbin_table::NumericFeatures::of(v);
                format!("({},{},{},{})", f.magnitude, f.precision, f.first_digit, f.last_digit)
            }
            None => "-".to_string(),
        };
        let bits: String = et.feat_bits.iter().map(|&b| if b { '1' } else { '0' }).collect();
        rows.push(vec![
            token_text,
            et.cell_pos.to_string(),
            format!("{:?}", et.tpos),
            number,
            tabbin_typeinfer::SemType::ALL[et.sem_type].name().to_string(),
            bits,
        ]);
    }
    format_table(
        "Figure 3 — Encoded representation of Table 1 (first 40 tokens)",
        &[
            "Token",
            "In Pos",
            "Out Pos (vr,vc,hr,hc,nr,nc)",
            "Number (m,p,f,l)",
            "Type",
            "Unit+Nesting",
        ],
        &rows,
    )
}

/// Figure 4: composite-embedding structure for numeric attributes and ranges.
pub fn figure4(_cfg: &ExpConfig) -> String {
    let tables = vec![table1_sample()];
    let fam = TabBiNFamily::new(&tables, ModelConfig::tiny(), 3);
    let h = fam.cfg.hidden;
    let ce_num =
        tabbin_core::composite::ce_numeric(&fam, "OS", 20.3, Some(tabbin_table::Unit::Time));
    let ce_rng =
        tabbin_core::composite::ce_range(&fam, "Age", 20.0, 30.0, Some(tabbin_table::Unit::Time));
    let rows = vec![
        vec![
            "(a) numeric: OS = 20.3 months".to_string(),
            format!("E(attr) ⊕ E(value) ⊕ E(unit) = {h} + {h} + {h}"),
            ce_num.len().to_string(),
        ],
        vec![
            "(b) range: Age = 20-30 year".to_string(),
            format!("E(attr) ⊕ E(unit) ⊕ E(start) ⊕ E(end) = {h} + {h} + {h} + {h}"),
            ce_rng.len().to_string(),
        ],
    ];
    format_table(
        "Figure 4 — Composite Embedding structure for numeric attributes and ranges",
        &["value", "structure", "total dim"],
        &rows,
    )
}

/// Figure 5: composite-embedding structure for TC and CC.
pub fn figure5(_cfg: &ExpConfig) -> String {
    let tables = vec![figure1_table(), table1_sample()];
    let fam = TabBiNFamily::new(&tables, ModelConfig::tiny(), 3);
    let h = fam.cfg.hidden;
    let col = fam.embed_colcomp(&tables[1], 0);
    let tbl1 = fam.embed_tblcomp1(&tables[0]);
    let tbl2 = fam.embed_table(&tables[0]);
    let rows = vec![
        vec![
            "(b) CC: colcomp".to_string(),
            format!("E_cj (HMD model) ⊕ mean E_d (column model) = {h} + {h}"),
            col.len().to_string(),
        ],
        vec![
            "(a) TC: tblcomp1".to_string(),
            format!("mean E_d (row) ⊕ mean E_c (HMD) ⊕ mean E_r (VMD) = 3 x {h}"),
            tbl1.len().to_string(),
        ],
        vec![
            "(a) TC: tblcomp2".to_string(),
            format!("tblcomp1 ⊕ E(caption) = 3 x {h} + {h}"),
            tbl2.len().to_string(),
        ],
    ];
    format_table(
        "Figure 5 — Composite Embeddings for Table Clustering and Column Clustering",
        &["composite", "structure", "total dim"],
        &rows,
    )
}
