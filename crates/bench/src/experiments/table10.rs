//! Table 10: CC performance without and with composite embeddings —
//! TabBiN-column only, TabBiN-HMD only, and the colcomp composite (§4.5).

use crate::bundle::{Bundle, ExpConfig};
use crate::harness::{eval_cc, eval_cc_batch, format_table};
use tabbin_corpus::Dataset;

/// Runs the composite-embedding CC analysis.
pub fn run(cfg: &ExpConfig) -> String {
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let bundle = Bundle::train(ds, cfg);
        for (content, numeric) in [("textual", false), ("numerical", true)] {
            let data_only = eval_cc(&bundle.corpus, numeric, cfg.k, cfg.max_queries, |t, j| {
                bundle.family.embed_column_data(t, j)
            });
            if data_only.queries == 0 {
                continue;
            }
            let attr_only = eval_cc(&bundle.corpus, numeric, cfg.k, cfg.max_queries, |t, j| {
                bundle.family.embed_attribute(t, j)
            });
            let colcomp =
                eval_cc_batch(&bundle.corpus, numeric, cfg.k, cfg.max_queries, |t, cols| {
                    bundle.family.embed_columns_subset(t, cols)
                });
            rows.push(vec![
                ds.name().to_string(),
                content.to_string(),
                data_only.render(),
                attr_only.render(),
                colcomp.render(),
            ]);
        }
    }
    format_table(
        "Table 10 — CC without vs with composite embeddings",
        &["dataset", "content", "TabBiN-col", "TabBiN-HMD", "TabBiN-colcomp"],
        &rows,
    )
}
