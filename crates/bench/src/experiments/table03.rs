//! Table 3: Word2Vec dimensionality sweep — average training time vs
//! MAP/MRR for CC and TC on CancerKG string content.

use crate::bundle::ExpConfig;
use crate::harness::{eval_cc, eval_tc, format_table};
use tabbin_baselines::word2vec::{tokenize, Word2Vec, Word2VecConfig};
use tabbin_corpus::{generate, Dataset, GenOptions};

/// Scaled dimensionalities standing in for the paper's 100–1000 sweep.
pub const DIMS: [usize; 5] = [16, 32, 64, 128, 256];

/// Runs the sweep.
pub fn run(cfg: &ExpConfig) -> String {
    let corpus =
        generate(Dataset::CancerKg, &GenOptions { n_tables: Some(cfg.n_tables), seed: cfg.seed });
    let sentences: Vec<Vec<String>> = corpus
        .tables
        .iter()
        .flat_map(|t| {
            (0..t.table.n_rows()).map(move |i| {
                t.table.row_text(i).iter().flat_map(|c| tokenize(c)).collect::<Vec<String>>()
            })
        })
        .collect();

    let mut rows = Vec::new();
    for dim in DIMS {
        let (model, elapsed) = Word2Vec::train(
            &sentences,
            &Word2VecConfig { dim, epochs: 6, seed: cfg.seed, ..Default::default() },
        );
        let cc = eval_cc(&corpus, false, cfg.k, cfg.max_queries, |t, j| {
            let mut text = t.hmd.leaf_labels().get(j).map(|s| s.to_string()).unwrap_or_default();
            for c in t.column_text(j) {
                text.push(' ');
                text.push_str(&c);
            }
            model.embed_text(&text)
        });
        let tc = eval_tc(
            &corpus,
            cfg.k,
            |_| true,
            |t| {
                let mut text = t.caption.clone();
                for i in 0..t.n_rows() {
                    for c in t.row_text(i) {
                        text.push(' ');
                        text.push_str(&c);
                    }
                }
                model.embed_text(&text)
            },
        );
        rows.push(vec![
            dim.to_string(),
            format!("{:.2}s", elapsed.as_secs_f64()),
            cc.render(),
            tc.render(),
        ]);
    }
    format_table(
        "Table 3 — Word2Vec training time vs MAP/MRR (CC and TC, CancerKG strings)",
        &["dim", "train time", "CC MAP/MRR", "TC MAP/MRR"],
        &rows,
    )
}
