//! Table 8: MAP/MRR for Entity Clustering across all five datasets.

use crate::bundle::{Bundle, ExpConfig};
use crate::harness::{eval_ec, format_table};
use tabbin_corpus::Dataset;

/// Runs the EC comparison.
pub fn run(cfg: &ExpConfig) -> String {
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let bundle = Bundle::train(ds, cfg);
        let tok = &bundle.family.tokenizer;
        let per_type = 12;
        let tabbin = eval_ec(&bundle.corpus, cfg.k, per_type, cfg.max_queries, |e| {
            bundle.family.embed_entity(e)
        });
        if tabbin.queries == 0 {
            continue;
        }
        let tuta = eval_ec(&bundle.corpus, cfg.k, per_type, cfg.max_queries, |e| {
            bundle.tuta.embed_entity(e, tok)
        });
        let bert = eval_ec(&bundle.corpus, cfg.k, per_type, cfg.max_queries, |e| {
            bundle.bert.embed_text(tok, e)
        });
        let w2v =
            eval_ec(&bundle.corpus, cfg.k, per_type, cfg.max_queries, |e| bundle.w2v.embed_text(e));
        rows.push(vec![
            ds.name().to_string(),
            tabbin.render(),
            tuta.render(),
            bert.render(),
            w2v.render(),
        ]);
    }
    format_table(
        "Table 8 — MAP/MRR for Entity Clustering",
        &["dataset", "TabBiN", "TUTA", "BioBERT", "Word2Vec"],
        &rows,
    )
}
