//! Table 13: ablation study on Table Clustering (§4.6).

use crate::bundle::ExpConfig;
use crate::experiments::table12::variants;
use crate::harness::{eval_tc_batch, format_table};
use tabbin_core::config::ModelConfig;
use tabbin_core::pretrain::PretrainOptions;
use tabbin_core::variants::TabBiNFamily;
use tabbin_corpus::{generate, Dataset, GenOptions, LabeledTable};
use tabbin_table::TableKind;

/// Runs the TC ablations on CancerKG and Webtables.
pub fn run(cfg: &ExpConfig) -> String {
    let mut rows = Vec::new();
    type Subset = (&'static str, fn(&LabeledTable) -> bool);
    let subsets: [Subset; 3] = [
        ("all", |_| true),
        ("non-relational", |t| t.table.kind() != TableKind::Relational),
        ("nested", |t| t.table.has_nesting()),
    ];
    for ds in [Dataset::CancerKg, Dataset::Webtables] {
        for (name, flags) in variants() {
            let mut sums = [[0.0f64; 2]; 3];
            let mut counts = [0usize; 3];
            for s in crate::experiments::table12::SEEDS {
                let seed = cfg.seed ^ (s * 0x1_0001);
                let corpus = generate(ds, &GenOptions { n_tables: Some(cfg.n_tables), seed });
                let tables = corpus.plain_tables();
                let model_cfg = ModelConfig::default().with_ablation(flags);
                let mut family = TabBiNFamily::new(&tables, model_cfg, seed);
                family.pretrain(
                    &tables,
                    &PretrainOptions { steps: cfg.steps, seed, ..Default::default() },
                );
                for (si, (_, subset)) in subsets.iter().enumerate() {
                    let e = eval_tc_batch(&corpus, cfg.k, subset, |ts| family.embed_table_refs(ts));
                    if e.queries > 0 {
                        sums[si][0] += e.map;
                        sums[si][1] += e.mrr;
                        counts[si] += 1;
                    }
                }
            }
            let mut row = vec![ds.name().to_string(), name.to_string()];
            for (si, sum) in sums.iter().enumerate() {
                row.push(if counts[si] == 0 {
                    "n/a".into()
                } else {
                    format!("{:.2}/{:.2}", sum[0] / counts[si] as f64, sum[1] / counts[si] as f64)
                });
            }
            rows.push(row);
        }
    }
    format_table(
        "Table 13 — Ablation study on Table Clustering (mean of 3 seeds)",
        &["dataset", "variant", "all MAP/MRR", "non-rel MAP/MRR", "nested MAP/MRR"],
        &rows,
    )
}
