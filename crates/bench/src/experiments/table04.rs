//! Table 4: MAP/MRR for Column Clustering — textual and numerical columns,
//! all five datasets, TabBiN vs TUTA vs BioBERT vs Word2Vec.

use crate::bundle::{Bundle, ExpConfig};
use crate::experiments::cc_lineup;
use crate::harness::format_table;
use tabbin_corpus::Dataset;

/// Runs the CC comparison.
pub fn run(cfg: &ExpConfig) -> String {
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let bundle = Bundle::train(ds, cfg);
        for (content, numeric) in [("textual", false), ("numerical", true)] {
            let lineup = cc_lineup(&bundle, numeric, cfg.k, cfg.max_queries);
            if lineup[0].1.queries == 0 {
                continue;
            }
            let mut row = vec![ds.name().to_string(), content.to_string()];
            row.extend(lineup.iter().map(|(_, e)| e.render()));
            rows.push(row);
        }
    }
    format_table(
        "Table 4 — MAP/MRR for Column Clustering (textual and numerical)",
        &["dataset", "content", "TabBiN", "TUTA", "BioBERT", "Word2Vec"],
        &rows,
    )
}
