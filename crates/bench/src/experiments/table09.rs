//! Table 9: F1 (%) for entity classification — TabBiN (+ linear/softmax
//! head) versus DITTO on ER-Magellan-style and corpus-derived pair sets.

use crate::bundle::ExpConfig;
use crate::harness::format_table;
use tabbin_baselines::bert::BertConfig;
use tabbin_baselines::ditto::{DittoOptions, DittoSim};
use tabbin_core::config::ModelConfig;
use tabbin_core::matcher::{EmbeddedPair, EntityMatcher, MatcherOptions};
use tabbin_core::variants::TabBiNFamily;
use tabbin_corpus::{
    abt_buy_like, amazon_google_like, em_pairs_from_corpus, generate, Dataset, EmPair, GenOptions,
};
use tabbin_table::Table;

fn tabbin_f1(train: &[EmPair], test: &[EmPair], seed: u64) -> f64 {
    // The TabBiN matcher embeds serialized entities with the entity
    // (column-model) encoder and trains the paper's linear+softmax head.
    let pseudo_tables: Vec<Table> = train
        .iter()
        .take(40)
        .map(|p| {
            Table::builder(p.a.clone())
                .hmd_flat(&["entity"])
                .row(vec![tabbin_table::CellValue::text(p.b.clone())])
                .build()
        })
        .collect();
    let family = TabBiNFamily::new(&pseudo_tables, ModelConfig::tiny(), seed);
    let embed_pairs = |pairs: &[EmPair]| -> Vec<EmbeddedPair> {
        pairs
            .iter()
            .map(|p| EmbeddedPair {
                a: family.embed_entity(&p.a),
                b: family.embed_entity(&p.b),
                matched: p.matched,
            })
            .collect()
    };
    let mut head = EntityMatcher::new(family.cfg.hidden, seed ^ 0x99);
    head.train(&embed_pairs(train), &MatcherOptions { epochs: 25, ..Default::default() });
    head.f1_percent(&embed_pairs(test))
}

fn ditto_f1(train: &[EmPair], test: &[EmPair], seed: u64) -> f64 {
    let cfg = BertConfig { hidden: 24, layers: 1, heads: 2, ff: 32, max_seq: 48 };
    let model =
        DittoSim::train(train, cfg, &DittoOptions { pretrain_steps: 100, head_epochs: 50, seed });
    model.f1_percent(test)
}

/// Runs the EM comparison.
pub fn run(cfg: &ExpConfig) -> String {
    let mut rows = Vec::new();
    let mut datasets: Vec<(String, Vec<EmPair>, Vec<EmPair>)> = vec![
        (
            "Amazon-Google (like)".into(),
            amazon_google_like(60, 60, cfg.seed),
            amazon_google_like(30, 30, cfg.seed ^ 1),
        ),
        (
            "Abt-Buy (like)".into(),
            abt_buy_like(60, 60, cfg.seed ^ 2),
            abt_buy_like(30, 30, cfg.seed ^ 3),
        ),
    ];
    for ds in [Dataset::CancerKg, Dataset::CovidKg, Dataset::Webtables] {
        let corpus =
            generate(ds, &GenOptions { n_tables: Some(cfg.n_tables.min(40)), seed: cfg.seed });
        datasets.push((
            ds.name().to_string(),
            em_pairs_from_corpus(&corpus, 60, 60, cfg.seed ^ 4),
            em_pairs_from_corpus(&corpus, 30, 30, cfg.seed ^ 5),
        ));
    }
    for (name, train, test) in &datasets {
        let t = tabbin_f1(train, test, cfg.seed);
        let d = ditto_f1(train, test, cfg.seed ^ 7);
        rows.push(vec![name.clone(), format!("{t:.2}"), format!("{d:.2}")]);
    }
    format_table(
        "Table 9 — F1 (%) for entity classification vs DITTO",
        &["dataset", "TabBiN", "DITTO"],
        &rows,
    )
}
