//! Table 12: ablation study on Column Clustering (§4.6) — removing the
//! visibility matrix (TabBiN₁), type inference (TabBiN₂), units & nesting
//! (TabBiN₃), and bi-dimensional coordinates (TabBiN₄).

use crate::bundle::ExpConfig;
use crate::harness::{eval_cc_batch, format_table};
use tabbin_core::config::{AblationFlags, ModelConfig};
use tabbin_core::pretrain::PretrainOptions;
use tabbin_core::variants::TabBiNFamily;
use tabbin_corpus::{generate, Dataset, GenOptions};

/// The five configurations of the ablation study.
pub fn variants() -> Vec<(&'static str, AblationFlags)> {
    vec![
        ("TabBiN (full)", AblationFlags::full()),
        ("TabBiN1 -visibility", AblationFlags::no_visibility()),
        ("TabBiN2 -type", AblationFlags::no_type_inference()),
        ("TabBiN3 -units/nesting", AblationFlags::no_units_nesting()),
        ("TabBiN4 -coordinates", AblationFlags::no_coordinates()),
    ]
}

/// Seeds averaged per ablation row (single-seed deltas at this scale are
/// dominated by training noise).
pub const SEEDS: [u64; 3] = [0, 1, 2];

/// Runs the CC ablations on CancerKG and Webtables.
pub fn run(cfg: &ExpConfig) -> String {
    let mut rows = Vec::new();
    for ds in [Dataset::CancerKg, Dataset::Webtables] {
        for (name, flags) in variants() {
            let mut text_map = 0.0;
            let mut text_mrr = 0.0;
            let mut num_map = 0.0;
            let mut num_mrr = 0.0;
            for s in SEEDS {
                let seed = cfg.seed ^ (s * 0x1_0001);
                let corpus = generate(ds, &GenOptions { n_tables: Some(cfg.n_tables), seed });
                let tables = corpus.plain_tables();
                let model_cfg = ModelConfig::default().with_ablation(flags);
                let mut family = TabBiNFamily::new(&tables, model_cfg, seed);
                family.pretrain(
                    &tables,
                    &PretrainOptions { steps: cfg.steps, seed, ..Default::default() },
                );
                let text = eval_cc_batch(&corpus, false, cfg.k, cfg.max_queries, |t, cols| {
                    family.embed_columns_subset(t, cols)
                });
                let num = eval_cc_batch(&corpus, true, cfg.k, cfg.max_queries, |t, cols| {
                    family.embed_columns_subset(t, cols)
                });
                text_map += text.map;
                text_mrr += text.mrr;
                num_map += num.map;
                num_mrr += num.mrr;
            }
            let n = SEEDS.len() as f64;
            rows.push(vec![
                ds.name().to_string(),
                name.to_string(),
                format!("{:.2}/{:.2}", text_map / n, text_mrr / n),
                format!("{:.2}/{:.2}", num_map / n, num_mrr / n),
            ]);
        }
    }
    format_table(
        "Table 12 — Ablation study on Column Clustering (mean of 3 seeds)",
        &["dataset", "variant", "textual MAP/MRR", "numerical MAP/MRR"],
        &rows,
    )
}
