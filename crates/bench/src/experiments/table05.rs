//! Table 5: MAP/MRR for Table Clustering — tables with HMD versus HMD+VMD,
//! mostly numerical content, and nesting (CovidKG and CancerKG).

use crate::bundle::{Bundle, ExpConfig};
use crate::experiments::tc_lineup;
use crate::harness::format_table;
use tabbin_corpus::{Dataset, LabeledTable};
use tabbin_table::TableKind;

/// Runs the structural TC comparison.
pub fn run(cfg: &ExpConfig) -> String {
    let mut rows = Vec::new();
    type Subset = (&'static str, fn(&LabeledTable) -> bool);
    let subsets: [Subset; 4] = [
        ("HMD only", |t| t.table.kind() != TableKind::BiN),
        ("HMD+VMD", |t| t.table.kind() == TableKind::BiN),
        (">80% Num", |t| t.table.numeric_fraction() > 0.8),
        ("Nested", |t| t.table.has_nesting()),
    ];
    for ds in [Dataset::CovidKg, Dataset::CancerKg] {
        let bundle = Bundle::train(ds, cfg);
        for (name, subset) in subsets {
            let lineup = tc_lineup(&bundle, cfg.k, subset);
            if lineup[0].1.queries == 0 {
                continue;
            }
            let mut row = vec![ds.name().to_string(), name.to_string()];
            row.extend(lineup.iter().map(|(_, e)| e.render()));
            rows.push(row);
        }
    }
    format_table(
        "Table 5 — MAP/MRR for Table Clustering by structure (HMD vs HMD+VMD, numeric, nested)",
        &["dataset", "subset", "TabBiN", "TUTA", "BioBERT", "Word2Vec"],
        &rows,
    )
}
