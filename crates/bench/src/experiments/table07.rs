//! Table 7: entity catalogs — per-dataset catalog sizes with an average
//! precision estimate.
//!
//! The paper samples 40 entities per catalog and has two annotators label
//! them; here the generator's labels are the annotators, and the measured AP
//! is the agreement of the rule-based type tagger with the ground truth —
//! i.e. the quality of a catalog extracted without ground-truth access.

use crate::bundle::ExpConfig;
use crate::harness::format_table;
use tabbin_corpus::{generate, Dataset, EType, GenOptions};
use tabbin_typeinfer::{SemType, TypeTagger};

/// Whether a tagger output is compatible with a catalog type.
fn compatible(ety: EType, sem: SemType) -> bool {
    matches!(
        (ety, sem),
        (EType::Drug, SemType::Drug)
            | (EType::Disease, SemType::Disease)
            | (EType::Vaccine, SemType::Vaccine)
            | (EType::Symptom, SemType::Disease)
            | (EType::Symptom, SemType::Text)
            | (EType::Treatment, SemType::Treatment)
            | (EType::Treatment, SemType::Therapy)
            | (EType::State, SemType::Place)
            | (EType::City, SemType::Place)
            | (EType::University, SemType::Organization)
            | (EType::Hospital, SemType::Organization)
            | (EType::Variant, SemType::Disease)
            | (EType::Variant, SemType::Text)
            | (EType::Occupation, SemType::PersonName)
            | (EType::Occupation, SemType::Text)
            | (
                EType::SoccerClub
                    | EType::Magazine
                    | EType::BaseballPlayer
                    | EType::MusicGenre
                    | EType::Crime
                    | EType::Crop
                    | EType::Industry,
                SemType::Text | SemType::Organization | SemType::PersonName
            )
    )
}

/// Runs the catalog report.
pub fn run(cfg: &ExpConfig) -> String {
    let tagger = TypeTagger::new();
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let corpus = generate(ds, &GenOptions { n_tables: Some(cfg.n_tables), seed: cfg.seed });
        for ety in EType::ALL {
            let ents = corpus.entities_of(ety);
            if ents.is_empty() {
                continue;
            }
            let sample: Vec<_> = ents.iter().take(40).collect();
            let hits = sample.iter().filter(|e| compatible(ety, tagger.tag(&e.text))).count();
            let ap = hits as f64 / sample.len() as f64;
            rows.push(vec![
                ds.name().to_string(),
                ety.name().to_string(),
                ents.len().to_string(),
                format!("{ap:.2}"),
            ]);
        }
    }
    format_table(
        "Table 7 — Entity catalogs (size and extraction AP against ground truth)",
        &["dataset", "catalog", "entities", "AP"],
        &rows,
    )
}
