//! Table 6: MAP/MRR for Table Clustering — relational versus non-relational
//! tables with heterogeneous data types (Webtables and CancerKG).

use crate::bundle::{Bundle, ExpConfig};
use crate::experiments::tc_lineup;
use crate::harness::format_table;
use tabbin_corpus::{Dataset, LabeledTable};
use tabbin_table::TableKind;

/// Runs the relational/non-relational TC comparison.
pub fn run(cfg: &ExpConfig) -> String {
    let mut rows = Vec::new();
    type Subset = (&'static str, fn(&LabeledTable) -> bool);
    let subsets: [Subset; 3] = [
        ("relational", |t| t.table.kind() == TableKind::Relational),
        ("non-relational", |t| t.table.kind() != TableKind::Relational),
        ("all (mixed)", |_| true),
    ];
    for ds in [Dataset::Webtables, Dataset::CancerKg] {
        let bundle = Bundle::train(ds, cfg);
        for (name, subset) in subsets {
            let lineup = tc_lineup(&bundle, cfg.k, subset);
            if lineup[0].1.queries == 0 {
                continue;
            }
            let mut row = vec![ds.name().to_string(), name.to_string()];
            row.extend(lineup.iter().map(|(_, e)| e.render()));
            rows.push(row);
        }
    }
    format_table(
        "Table 6 — MAP/MRR for Table Clustering: relational vs non-relational",
        &["dataset", "subset", "TabBiN", "TUTA", "BioBERT", "Word2Vec"],
        &rows,
    )
}
