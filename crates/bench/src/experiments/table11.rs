//! Table 11: TC performance without and with composite embeddings —
//! row model only, tblcomp1, tblcomp2 (§4.5), across structural subsets.

use crate::bundle::{Bundle, ExpConfig};
use crate::harness::{eval_tc, eval_tc_batch, format_table};
use tabbin_corpus::{Dataset, LabeledTable};
use tabbin_table::TableKind;

/// Runs the composite-embedding TC analysis.
pub fn run(cfg: &ExpConfig) -> String {
    let mut rows = Vec::new();
    type Subset = (&'static str, fn(&LabeledTable) -> bool);
    let subsets: [Subset; 4] = [
        ("all", |_| true),
        ("HMD+VMD", |t| t.table.kind() == TableKind::BiN),
        ("relational", |t| t.table.kind() == TableKind::Relational),
        ("nested", |t| t.table.has_nesting()),
    ];
    for ds in [Dataset::CancerKg, Dataset::CovidKg] {
        let bundle = Bundle::train(ds, cfg);
        for (name, subset) in subsets {
            let row_only =
                eval_tc(&bundle.corpus, cfg.k, subset, |t| bundle.family.embed_table_data(t));
            if row_only.queries == 0 {
                continue;
            }
            let comp1 = eval_tc(&bundle.corpus, cfg.k, subset, |t| bundle.family.embed_tblcomp1(t));
            let comp2 = eval_tc_batch(&bundle.corpus, cfg.k, subset, |ts| {
                bundle.family.embed_table_refs(ts)
            });
            rows.push(vec![
                ds.name().to_string(),
                name.to_string(),
                row_only.render(),
                comp1.render(),
                comp2.render(),
            ]);
        }
    }
    format_table(
        "Table 11 — TC without vs with composite embeddings",
        &["dataset", "subset", "TabBiN-row", "tblcomp1", "tblcomp2"],
        &rows,
    )
}
