//! A trained model bundle for one dataset: TabBiN family plus all baselines,
//! sharing the corpus-trained tokenizer as the paper's models share the
//! BioBERT vocabulary.

use tabbin_baselines::bert::{BertConfig, BertPretrainOptions, BertSim};
use tabbin_baselines::tuta::TutaSim;
use tabbin_baselines::word2vec::{Word2Vec, Word2VecConfig};
use tabbin_core::config::ModelConfig;
use tabbin_core::pretrain::PretrainOptions;
use tabbin_core::variants::TabBiNFamily;
use tabbin_corpus::{generate, Corpus, Dataset, GenOptions};
use tabbin_table::Table;

/// Experiment-scale knobs, overridable from the environment:
/// `TABBIN_TABLES` (tables per corpus), `TABBIN_STEPS` (pre-train steps per
/// model), `TABBIN_SEED`.
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Tables per generated corpus.
    pub n_tables: usize,
    /// Pre-training steps per model.
    pub steps: usize,
    /// Base seed.
    pub seed: u64,
    /// Retrieval cutoff (the paper uses 20).
    pub k: usize,
    /// Maximum queries sampled per evaluation.
    pub max_queries: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self { n_tables: 60, steps: 60, seed: 42, k: 20, max_queries: 40 }
    }
}

impl ExpConfig {
    /// Reads overrides from the environment.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("TABBIN_TABLES") {
            if let Ok(n) = v.parse() {
                cfg.n_tables = n;
            }
        }
        if let Ok(v) = std::env::var("TABBIN_STEPS") {
            if let Ok(n) = v.parse() {
                cfg.steps = n;
            }
        }
        if let Ok(v) = std::env::var("TABBIN_SEED") {
            if let Ok(n) = v.parse() {
                cfg.seed = n;
            }
        }
        cfg
    }

    /// A fast configuration for tests.
    pub fn quick() -> Self {
        Self { n_tables: 24, steps: 8, seed: 7, k: 20, max_queries: 12 }
    }
}

/// Everything trained for one dataset.
pub struct Bundle {
    /// The generated corpus with ground truth.
    pub corpus: Corpus,
    /// Plain tables (cached clone of the corpus tables).
    pub tables: Vec<Table>,
    /// The TabBiN four-model family.
    pub family: TabBiNFamily,
    /// TUTA-style baseline.
    pub tuta: TutaSim,
    /// BioBERT-style flat baseline.
    pub bert: BertSim,
    /// Word2Vec baseline.
    pub w2v: Word2Vec,
}

impl Bundle {
    /// Generates the corpus and trains every model.
    pub fn train(ds: Dataset, cfg: &ExpConfig) -> Self {
        Self::train_with_model(ds, cfg, ModelConfig::default())
    }

    /// As [`Bundle::train`] with an explicit TabBiN geometry (used by the
    /// ablation experiments).
    pub fn train_with_model(ds: Dataset, cfg: &ExpConfig, model_cfg: ModelConfig) -> Self {
        let corpus = generate(ds, &GenOptions { n_tables: Some(cfg.n_tables), seed: cfg.seed });
        let tables = corpus.plain_tables();

        let mut family = TabBiNFamily::new(&tables, model_cfg, cfg.seed);
        let opts = PretrainOptions { steps: cfg.steps, seed: cfg.seed, ..Default::default() };
        family.pretrain(&tables, &opts);

        let vocab = family.tokenizer.vocab_size();
        let mut tuta = TutaSim::new(model_cfg, vocab, cfg.seed ^ 0xaaaa);
        tuta.pretrain(&tables, &family.tokenizer, &opts);

        let bert_cfg = BertConfig {
            hidden: model_cfg.hidden,
            layers: model_cfg.layers,
            heads: model_cfg.heads,
            ff: model_cfg.ff,
            max_seq: model_cfg.max_seq,
        };
        let mut bert = BertSim::new(bert_cfg, vocab, cfg.seed ^ 0xbbbb);
        let seqs: Vec<Vec<u32>> = tables
            .iter()
            .map(|t| BertSim::linearize(t, &family.tokenizer, model_cfg.max_seq))
            .collect();
        bert.pretrain(
            &seqs,
            &BertPretrainOptions {
                steps: cfg.steps,
                seed: cfg.seed ^ 0xcccc,
                ..Default::default()
            },
        );

        let sentences: Vec<Vec<String>> = tables
            .iter()
            .flat_map(|t| {
                (0..t.n_rows()).map(move |i| {
                    t.row_text(i)
                        .iter()
                        .flat_map(|c| tabbin_baselines::word2vec::tokenize(c))
                        .collect()
                })
            })
            .collect();
        let (w2v, _) = Word2Vec::train(
            &sentences,
            &Word2VecConfig { dim: 32, epochs: 6, seed: cfg.seed ^ 0xdddd, ..Default::default() },
        );

        Self { corpus, tables, family, tuta, bert, w2v }
    }
}
