//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§4).
//!
//! Each `exp_*` binary in `src/bin/` is a thin wrapper over a module in
//! [`experiments`]; the logic lives here so integration tests can exercise
//! it and `all_experiments` can compose a full run. Absolute numbers differ
//! from the paper (synthetic corpora, CPU-scaled models — see DESIGN.md);
//! the reproduction target is the *shape* of each comparison.

pub mod bundle;
pub mod experiments;
pub mod harness;

pub use bundle::{Bundle, ExpConfig};
pub use harness::{
    eval_cc, eval_cc_batch, eval_ec, eval_tc, eval_tc_batch, format_table, ColumnRef,
};
