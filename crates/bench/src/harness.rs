//! Shared evaluation protocols and table formatting.

use tabbin_corpus::{Corpus, EType, FILLER_SEM_ID};
use tabbin_eval::clustering::{evaluate_centroid_retrieval, evaluate_retrieval, RetrievalEval};
use tabbin_table::Table;

/// A reference to one data column in a corpus.
#[derive(Clone, Copy, Debug)]
pub struct ColumnRef {
    /// Index of the owning table.
    pub table: usize,
    /// Column index.
    pub col: usize,
    /// Ground-truth semantic id.
    pub sem: u32,
    /// Numeric column flag.
    pub numeric: bool,
}

/// Collects all clusterable columns (filler columns excluded) matching the
/// numeric filter.
pub fn collect_columns(corpus: &Corpus, numeric: bool) -> Vec<ColumnRef> {
    let mut out = Vec::new();
    for (ti, lt) in corpus.tables.iter().enumerate() {
        for (ci, (&sem, &num)) in lt.column_sem.iter().zip(&lt.column_numeric).enumerate() {
            if sem != FILLER_SEM_ID && num == numeric {
                out.push(ColumnRef { table: ti, col: ci, sem, numeric: num });
            }
        }
    }
    out
}

/// Evenly samples up to `max` query indices from `n` items.
pub fn sample_queries(n: usize, max: usize) -> Vec<usize> {
    if n <= max {
        (0..n).collect()
    } else {
        (0..max).map(|i| i * n / max).collect()
    }
}

/// Column-clustering evaluation (§4.1): embed every selected column, rank by
/// cosine, relevance = same semantic id.
pub fn eval_cc(
    corpus: &Corpus,
    numeric: bool,
    k: usize,
    max_queries: usize,
    mut embed: impl FnMut(&Table, usize) -> Vec<f32>,
) -> RetrievalEval {
    let cols = collect_columns(corpus, numeric);
    // Only evaluate semantic ids that appear more than once (something to
    // retrieve must exist).
    let items: Vec<Vec<f32>> =
        cols.iter().map(|c| embed(&corpus.tables[c.table].table, c.col)).collect();
    eval_cc_over(&cols, items, k, max_queries)
}

/// [`eval_cc`] with a per-table **batch** embedder: `embed_columns` is called
/// once per referenced table with exactly the column indices the evaluation
/// needs (returning one vector per requested column, in order), so batched
/// pipelines embed a table's evaluated columns in one pass — without
/// re-placing model parameters per column and without embedding filtered-out
/// columns at all.
pub fn eval_cc_batch(
    corpus: &Corpus,
    numeric: bool,
    k: usize,
    max_queries: usize,
    mut embed_columns: impl FnMut(&Table, &[usize]) -> Vec<Vec<f32>>,
) -> RetrievalEval {
    let cols = collect_columns(corpus, numeric);
    // Group the needed column indices by table, embed each group in one
    // batched call, then lay the results back out in `cols` order.
    let mut wanted: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for c in &cols {
        wanted.entry(c.table).or_default().push(c.col);
    }
    let mut by_table: std::collections::HashMap<(usize, usize), Vec<f32>> = Default::default();
    for (&ti, col_ids) in &wanted {
        let embs = embed_columns(&corpus.tables[ti].table, col_ids);
        assert_eq!(embs.len(), col_ids.len(), "embedder must return one vector per column");
        for (&ci, e) in col_ids.iter().zip(embs) {
            by_table.insert((ti, ci), e);
        }
    }
    let items: Vec<Vec<f32>> = cols.iter().map(|c| by_table[&(c.table, c.col)].clone()).collect();
    eval_cc_over(&cols, items, k, max_queries)
}

fn eval_cc_over(
    cols: &[ColumnRef],
    items: Vec<Vec<f32>>,
    k: usize,
    max_queries: usize,
) -> RetrievalEval {
    let labels: Vec<u32> = cols.iter().map(|c| c.sem).collect();
    let queries: Vec<usize> = sample_queries(cols.len(), max_queries)
        .into_iter()
        .filter(|&q| labels.iter().enumerate().any(|(i, &l)| i != q && l == labels[q]))
        .collect();
    evaluate_retrieval(&items, &labels, &queries, k)
}

/// Table-clustering evaluation (§4.2): centroid per topic ranks the corpus.
pub fn eval_tc(
    corpus: &Corpus,
    k: usize,
    subset: impl Fn(&tabbin_corpus::LabeledTable) -> bool,
    mut embed: impl FnMut(&Table) -> Vec<f32>,
) -> RetrievalEval {
    eval_tc_batch(corpus, k, subset, |tables| tables.iter().map(|t| embed(t)).collect())
}

/// [`eval_tc`] with a **batch** embedder: the whole selected subset is handed
/// to `embed_all` at once, so batched pipelines (e.g.
/// `TabBiNFamily::embed_table_refs`) can place model parameters once and fan
/// out across threads instead of being called table by table.
pub fn eval_tc_batch(
    corpus: &Corpus,
    k: usize,
    subset: impl Fn(&tabbin_corpus::LabeledTable) -> bool,
    embed_all: impl FnOnce(&[&Table]) -> Vec<Vec<f32>>,
) -> RetrievalEval {
    let selected: Vec<&tabbin_corpus::LabeledTable> =
        corpus.tables.iter().filter(|t| subset(t)).collect();
    let refs: Vec<&Table> = selected.iter().map(|t| &t.table).collect();
    let items = embed_all(&refs);
    assert_eq!(items.len(), refs.len(), "batch embedder must return one vector per table");
    let labels: Vec<String> = selected.iter().map(|t| t.topic.clone()).collect();
    let mut topics = labels.clone();
    topics.sort();
    topics.dedup();
    // Keep topics with at least 2 members.
    let topics: Vec<String> =
        topics.into_iter().filter(|t| labels.iter().filter(|l| *l == t).count() >= 2).collect();
    evaluate_centroid_retrieval(&items, &labels, &topics, k)
}

/// Entity-clustering evaluation (§4.3): embed catalog entities, rank by
/// cosine, relevance = same entity type.
pub fn eval_ec(
    corpus: &Corpus,
    k: usize,
    max_per_type: usize,
    max_queries: usize,
    mut embed: impl FnMut(&str) -> Vec<f32>,
) -> RetrievalEval {
    let mut items = Vec::new();
    let mut labels: Vec<EType> = Vec::new();
    for ety in EType::ALL {
        for e in corpus.entities_of(ety).into_iter().take(max_per_type) {
            items.push(embed(&e.text));
            labels.push(ety);
        }
    }
    let queries: Vec<usize> = sample_queries(items.len(), max_queries)
        .into_iter()
        .filter(|&q| labels.iter().enumerate().any(|(i, &l)| i != q && l == labels[q]))
        .collect();
    evaluate_retrieval(&items, &labels, &queries, k)
}

/// Formats a fixed-width text table with a title, as the experiment binaries
/// print.
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let sep: String = widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+");
    out.push_str(&sep);
    out.push('\n');
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:<w$} ", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("|")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out.push_str(&sep);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabbin_corpus::{generate, Dataset, GenOptions};

    #[test]
    fn collect_columns_excludes_fillers() {
        let c = generate(Dataset::Webtables, &GenOptions { n_tables: Some(20), seed: 1 });
        let cols = collect_columns(&c, false);
        assert!(cols.iter().all(|c| c.sem != FILLER_SEM_ID));
        assert!(!cols.is_empty());
    }

    #[test]
    fn sample_queries_bounds() {
        assert_eq!(sample_queries(5, 10), vec![0, 1, 2, 3, 4]);
        let s = sample_queries(100, 10);
        assert_eq!(s.len(), 10);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn eval_cc_with_oracle_embeddings_is_perfect() {
        // Embedding = one-hot of the ground-truth label ⇒ MAP = MRR = 1.
        let c = generate(Dataset::Saus, &GenOptions { n_tables: Some(20), seed: 2 });
        let cols = collect_columns(&c, true);
        let mut sems: Vec<u32> = cols.iter().map(|c| c.sem).collect();
        sems.sort_unstable();
        sems.dedup();
        let lookup: std::collections::HashMap<(usize, usize), u32> =
            cols.iter().map(|c| ((c.table, c.col), c.sem)).collect();
        let table_index: std::collections::HashMap<*const Table, usize> =
            c.tables.iter().enumerate().map(|(i, t)| (&t.table as *const Table, i)).collect();
        let eval = eval_cc(&c, true, 20, 20, |t, col| {
            let ti = table_index[&(t as *const Table)];
            let sem = lookup[&(ti, col)];
            let mut v = vec![0.0f32; sems.len()];
            v[sems.iter().position(|&s| s == sem).unwrap()] = 1.0;
            v
        });
        assert!(eval.map > 0.99, "oracle MAP {}", eval.map);
        assert!(eval.mrr > 0.99);
    }

    #[test]
    fn eval_tc_with_oracle_embeddings_is_perfect() {
        let c = generate(Dataset::Cius, &GenOptions { n_tables: Some(20), seed: 3 });
        let topics = c.topics();
        let topic_of: std::collections::HashMap<*const Table, usize> = c
            .tables
            .iter()
            .map(|t| (&t.table as *const Table, topics.iter().position(|x| *x == t.topic).unwrap()))
            .collect();
        let eval = eval_tc(
            &c,
            20,
            |_| true,
            |t| {
                let mut v = vec![0.0f32; topics.len()];
                v[topic_of[&(t as *const Table)]] = 1.0;
                v
            },
        );
        assert!(eval.map > 0.99, "oracle TC MAP {}", eval.map);
    }

    #[test]
    fn format_table_aligns_columns() {
        let s = format_table(
            "Demo",
            &["model", "map"],
            &[vec!["tabbin".into(), "0.91".into()], vec!["tuta".into(), "0.8".into()]],
        );
        assert!(s.contains("Demo"));
        assert!(s.contains("tabbin"));
        let lines: Vec<&str> = s.lines().collect();
        // header separator appears three times
        assert_eq!(lines.iter().filter(|l| l.starts_with('-')).count(), 3);
    }
}
