//! Regenerates the paper's Table 12 (see DESIGN.md for the experiment index).
fn main() {
    let cfg = tabbin_bench::ExpConfig::from_env();
    println!("{}", tabbin_bench::experiments::table12::run(&cfg));
}
