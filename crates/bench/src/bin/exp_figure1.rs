//! Regenerates the paper's Figure1 (see DESIGN.md for the experiment index).
fn main() {
    let cfg = tabbin_bench::ExpConfig::from_env();
    println!("{}", tabbin_bench::experiments::figures::figure1(&cfg));
}
