//! Regenerates the paper's Figure2 (see DESIGN.md for the experiment index).
fn main() {
    let cfg = tabbin_bench::ExpConfig::from_env();
    println!("{}", tabbin_bench::experiments::figures::figure2(&cfg));
}
