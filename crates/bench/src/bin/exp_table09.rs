//! Regenerates the paper's Table 09 (see DESIGN.md for the experiment index).
fn main() {
    let cfg = tabbin_bench::ExpConfig::from_env();
    println!("{}", tabbin_bench::experiments::table09::run(&cfg));
}
