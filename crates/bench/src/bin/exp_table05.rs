//! Regenerates the paper's Table 05 (see DESIGN.md for the experiment index).
fn main() {
    let cfg = tabbin_bench::ExpConfig::from_env();
    println!("{}", tabbin_bench::experiments::table05::run(&cfg));
}
