//! Regenerates the paper's Figure4 (see DESIGN.md for the experiment index).
fn main() {
    let cfg = tabbin_bench::ExpConfig::from_env();
    println!("{}", tabbin_bench::experiments::figures::figure4(&cfg));
}
