//! Runs every experiment in sequence, printing each paper table/figure.
//! Scale with TABBIN_TABLES / TABBIN_STEPS environment variables.
fn main() {
    use tabbin_bench::experiments as e;
    let cfg = tabbin_bench::ExpConfig::from_env();
    let t0 = std::time::Instant::now();
    println!("{}", e::figures::figure1(&cfg));
    println!("{}", e::figures::figure2(&cfg));
    println!("{}", e::figures::figure3(&cfg));
    println!("{}", e::figures::figure4(&cfg));
    println!("{}", e::figures::figure5(&cfg));
    println!("{}", e::table03::run(&cfg));
    println!("{}", e::table04::run(&cfg));
    println!("{}", e::table05::run(&cfg));
    println!("{}", e::table06::run(&cfg));
    println!("{}", e::table07::run(&cfg));
    println!("{}", e::table08::run(&cfg));
    println!("{}", e::table09::run(&cfg));
    println!("{}", e::table10::run(&cfg));
    println!("{}", e::table11::run(&cfg));
    println!("{}", e::table12::run(&cfg));
    println!("{}", e::table13::run(&cfg));
    println!("{}", e::table14::run(&cfg));
    println!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
