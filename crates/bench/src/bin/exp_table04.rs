//! Regenerates the paper's Table 04 (see DESIGN.md for the experiment index).
fn main() {
    let cfg = tabbin_bench::ExpConfig::from_env();
    println!("{}", tabbin_bench::experiments::table04::run(&cfg));
}
