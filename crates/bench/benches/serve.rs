//! Serving-tier benchmark: the full `tabbin-serve` stack (tagged-frame
//! wire protocol → readiness-driven event loop → admission queue → worker
//! pool → micro-batcher → query engine → sharded store) under closed-loop
//! load at several offered concurrencies, plus a pipelining section that
//! measures what protocol v2 buys: one connection with a window of tagged
//! requests in flight versus the one-outstanding blocking client.
//!
//! Writes `BENCH_serve.json` at the workspace root: per offered-load level
//! the achieved QPS, request latency p50/p99 (successful requests), the
//! shed rate, the per-client in-flight window, and the engine cache hit
//! rate; then the pipelined-vs-blocking single-connection comparison. The
//! printed figures are the written figures — both come from the same
//! formatted strings.
//!
//! Two asserts live here, not in a test, because they are throughput
//! claims about the event-loop architecture:
//! - 32 closed-loop clients shed < 5% (v1's thread-starved stack shed 93%);
//! - one pipelined connection with a 16-deep window reaches ≥ 5× the QPS
//!   of the blocking client on the same server.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;
use tabbin_index::{EngineConfig, LshParams, QueryEngine, ShardedStore, StoreConfig};
use tabbin_serve::{Client, PipelinedClient, QueryOutcome, ServeConfig, Server};

const N_VECTORS: usize = 10_000;
const DIM: usize = 128;
const K: usize = 10;
const N_SHARDS: usize = 4;
/// Requests each closed-loop client issues per load level.
const REQUESTS_PER_CLIENT: usize = 400;
/// Offered-load levels: closed-loop client counts.
const LOADS: [usize; 3] = [2, 8, 32];
const WORKERS: usize = 4;
/// Ceiling on the shed rate at the highest closed-loop load.
const MAX_SHED_RATE: f64 = 0.05;
/// Outstanding-request window of the pipelined connection.
const PIPELINE_WINDOW: usize = 32;
/// The v1 (thread-per-connection, one-outstanding-request) blocking
/// client's throughput on this same corpus and hot-pool workload:
/// 22,863.8 qps across the 2 closed-loop clients of the pre-event-loop
/// BENCH_serve load=2 row, i.e. ~11.4k qps per connection. The issue's
/// acceptance bar is pinned against this, not against the current
/// blocking client — v2's inline cache path made the blocking client
/// itself ~10× faster, which is a win, not a moving goalpost.
const V1_BLOCKING_QPS: f64 = 22_863.8 / 2.0;
/// Requests each single-connection contender issues.
const PIPELINE_REQUESTS: usize = 6_000;
/// Required speedup of the pipelined connection over the blocking one.
const MIN_PIPELINE_SPEEDUP: f64 = 5.0;
/// Size of the shared hot-query pool clients repeat from.
const QUERY_POOL_SIZE: usize = 48;
/// Percent of each client's requests drawn from the hot pool; the rest are
/// fresh jittered queries no cache can anticipate.
const REPEAT_PCT: u32 = 75;

/// Same clustered corpus shape as the `index` bench.
fn clustered_corpus(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_clusters = 100;
    let centers: Vec<Vec<f32>> = (0..n_clusters)
        .map(|_| (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect())
        .collect();
    (0..n)
        .map(|i| {
            let c = &centers[i % n_clusters];
            c.iter().map(|x| x + rng.random_range(-0.15f32..0.15)).collect()
        })
        .collect()
}

fn build_store(corpus: &[Vec<f32>]) -> ShardedStore {
    let cfg = StoreConfig::with_lsh(LshParams::default_blocking());
    let mut store = ShardedStore::new(DIM, N_SHARDS, cfg);
    for v in corpus {
        store.insert(v);
    }
    store
}

/// One load level's outcome.
struct LoadResult {
    offered: usize,
    served: usize,
    shed: usize,
    wall_secs: f64,
    /// Latencies of successful requests, seconds.
    latencies: Vec<f64>,
    cache_hit_rate: f64,
}

/// Runs `clients` closed-loop clients against a fresh server over `store`,
/// each issuing [`REQUESTS_PER_CLIENT`] requests: [`REPEAT_PCT`]% drawn
/// from the shared hot-query `pool`, the rest fresh jittered queries.
fn run_load(
    store: &ShardedStore,
    corpus: &[Vec<f32>],
    pool: &Arc<Vec<Vec<f32>>>,
    clients: usize,
) -> LoadResult {
    let engine = Arc::new(QueryEngine::new(store.clone(), EngineConfig::lsh()));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServeConfig { workers: WORKERS, ..ServeConfig::default() },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let queries: Vec<Vec<f32>> = {
                let mut rng = StdRng::seed_from_u64(0x5e7e + c as u64);
                let pool = Arc::clone(pool);
                (0..REQUESTS_PER_CLIENT)
                    .map(|i| {
                        if rng.random_range(0u32..100) < REPEAT_PCT {
                            // A hot query, byte-identical across clients.
                            pool[rng.random_range(0..pool.len())].clone()
                        } else {
                            let base = &corpus[(c * REQUESTS_PER_CLIENT + i) % corpus.len()];
                            base.iter().map(|x| x + rng.random_range(-0.02f32..0.02)).collect()
                        }
                    })
                    .collect()
            };
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut latencies = Vec::with_capacity(REQUESTS_PER_CLIENT);
                let mut shed = 0usize;
                for q in &queries {
                    let t = Instant::now();
                    match client.query(q, K).expect("request must answer, never hang") {
                        QueryOutcome::Hits(hits) => {
                            black_box(&hits);
                            latencies.push(t.elapsed().as_secs_f64());
                        }
                        QueryOutcome::Overloaded { .. } => shed += 1,
                    }
                }
                (latencies, shed)
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut shed = 0usize;
    for h in handles {
        let (lats, s) = h.join().expect("client thread panicked");
        latencies.extend(lats);
        shed += s;
    }
    let wall_secs = started.elapsed().as_secs_f64();
    let stats = server.stats();
    assert_eq!(stats.shed as usize, shed, "server and client shed counts disagree");
    assert_eq!(stats.served as usize, latencies.len(), "served count mismatch");
    let engine_stats = stats.engine;
    let looked_up = engine_stats.cache_hits + engine_stats.cache_misses;
    server.shutdown();
    LoadResult {
        offered: clients * REQUESTS_PER_CLIENT,
        served: latencies.len(),
        shed,
        wall_secs,
        latencies,
        cache_hit_rate: if looked_up == 0 {
            0.0
        } else {
            engine_stats.cache_hits as f64 / looked_up as f64
        },
    }
}

/// Single-connection throughput: blocking one-outstanding vs pipelined
/// with a [`PIPELINE_WINDOW`]-deep tagged window, same server, same
/// hot-pool query stream. Storage throughput has its own bench; this
/// section isolates the transport — a warmed LRU makes the engine nearly
/// free, so what remains is exactly what pipelining claims to fix: the
/// blocking client burns a full round trip per request, the pipelined
/// one keeps [`PIPELINE_WINDOW`] requests in the pipe.
struct PipelineResult {
    blocking_qps: f64,
    pipelined_qps: f64,
    peak_in_flight: usize,
}

fn run_pipeline_comparison(store: &ShardedStore, pool: &Arc<Vec<Vec<f32>>>) -> PipelineResult {
    let engine = Arc::new(QueryEngine::new(store.clone(), EngineConfig::lsh()));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServeConfig { workers: WORKERS, ..ServeConfig::default() },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let queries: Vec<&Vec<f32>> =
        (0..PIPELINE_REQUESTS).map(|i| &pool[(i * 31) % pool.len()]).collect();

    // Warm the engine LRU so both contenders pay the same (tiny) engine
    // cost and the measurement is transport-bound.
    let mut warm = Client::connect(addr).expect("connect warm");
    for q in pool.iter() {
        warm.query(q, K).expect("warm query");
    }
    drop(warm);

    // Baseline: the v1-style client, one outstanding request.
    let mut blocking = Client::connect(addr).expect("connect blocking");
    let t = Instant::now();
    for q in &queries {
        match blocking.query(q, K).expect("blocking query") {
            QueryOutcome::Hits(hits) => {
                black_box(&hits);
            }
            QueryOutcome::Overloaded { .. } => panic!("one blocking client shed"),
        }
    }
    let blocking_qps = queries.len() as f64 / t.elapsed().as_secs_f64();
    drop(blocking);

    // Contender: same stream, one connection, PIPELINE_WINDOW outstanding,
    // driven double-buffered: submit a half-window burst (one flush), then
    // claim the *previous* burst's replies — while this side decodes, the
    // server is already chewing on the next burst. The pipe never drains
    // until the tail.
    let mut pipelined = PipelinedClient::connect(addr, PIPELINE_WINDOW).expect("connect pipelined");
    let mut peak_in_flight = 0usize;
    let t = Instant::now();
    let mut pending: std::collections::VecDeque<u64> =
        std::collections::VecDeque::with_capacity(PIPELINE_WINDOW);
    for burst in queries.chunks(PIPELINE_WINDOW / 2) {
        for q in burst {
            pending.push_back(pipelined.submit(q, K).expect("pipelined submit"));
        }
        peak_in_flight = peak_in_flight.max(pipelined.in_flight());
        while pending.len() > PIPELINE_WINDOW / 2 {
            let tag = pending.pop_front().expect("nonempty");
            match pipelined.wait(tag).expect("pipelined wait") {
                QueryOutcome::Hits(hits) => {
                    black_box(&hits);
                }
                QueryOutcome::Overloaded { .. } => panic!("pipelined window shed"),
            }
        }
    }
    for tag in pending {
        match pipelined.wait(tag).expect("pipelined drain") {
            QueryOutcome::Hits(hits) => {
                black_box(&hits);
            }
            QueryOutcome::Overloaded { .. } => panic!("pipelined window shed"),
        }
    }
    let pipelined_qps = queries.len() as f64 / t.elapsed().as_secs_f64();
    assert_eq!(pipelined.in_flight(), 0, "requests left unclaimed");
    server.shutdown();
    PipelineResult { blocking_qps, pipelined_qps, peak_in_flight }
}

/// The `q`-quantile of `samples` (nearest-rank), in milliseconds.
fn quantile_ms(samples: &mut [f64], q: f64) -> f64 {
    samples.sort_by(f64::total_cmp);
    let idx = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[idx] * 1e3
}

fn bench_serve(c: &mut Criterion) {
    let corpus = clustered_corpus(N_VECTORS, DIM, 17);
    let store = build_store(&corpus);
    // The hot-query pool every client repeats from: jittered corpus rows,
    // fixed seed, built once so repeats are byte-identical across clients.
    let pool: Arc<Vec<Vec<f32>>> = Arc::new({
        let mut rng = StdRng::seed_from_u64(0x9001);
        (0..QUERY_POOL_SIZE)
            .map(|i| {
                let base = &corpus[(i * 97) % corpus.len()];
                base.iter().map(|x| x + rng.random_range(-0.02f32..0.02)).collect()
            })
            .collect()
    });
    let queue_capacity =
        ServeConfig { workers: WORKERS, ..ServeConfig::default() }.resolved_queue_capacity();

    let mut level_json = Vec::new();
    for &clients in &LOADS {
        let mut r = run_load(&store, &corpus, &pool, clients);
        assert!(r.served > 0, "{clients} clients: nothing served");
        assert!(
            r.cache_hit_rate > 0.2,
            "{clients} clients: cache hit rate {:.4} — a {REPEAT_PCT}% hot-pool workload \
             must hit the engine LRU",
            r.cache_hit_rate
        );
        let qps = r.served as f64 / r.wall_secs;
        let p50 = quantile_ms(&mut r.latencies, 0.50);
        let p99 = quantile_ms(&mut r.latencies, 0.99);
        let shed_rate = r.shed as f64 / r.offered as f64;
        if clients == *LOADS.last().expect("loads nonempty") {
            // The tentpole's load-shedding claim: the event loop plus the
            // worker-sized queue absorb 32 closed-loop clients (v1 shed
            // 93% here because blocked I/O threads held queue slots).
            assert!(
                shed_rate < MAX_SHED_RATE,
                "{clients} closed-loop clients shed {shed_rate:.4} of requests \
                 (limit {MAX_SHED_RATE}) — the event loop is not absorbing load"
            );
        }
        // Format once; print and write the same strings.
        let qps_s = format!("{qps:.1}");
        let p50_s = format!("{p50:.3}");
        let p99_s = format!("{p99:.3}");
        let shed_s = format!("{shed_rate:.4}");
        let hit_s = format!("{:.4}", r.cache_hit_rate);
        println!(
            "serve_{N_VECTORS}x{DIM} load={clients}: {qps_s} qps, \
             latency p50 {p50_s} ms / p99 {p99_s} ms, shed rate {shed_s}, \
             cache hit rate {hit_s} ({}/{} requests served)",
            r.served, r.offered
        );
        level_json.push(format!(
            "    {{\n      \"clients\": {clients},\n      \"window\": 1,\n      \
             \"offered_requests\": {},\n      \
             \"served\": {},\n      \"qps\": {qps_s},\n      \"latency_ms_p50\": {p50_s},\n      \
             \"latency_ms_p99\": {p99_s},\n      \"shed_rate\": {shed_s},\n      \
             \"cache_hit_rate\": {hit_s}\n    }}",
            r.offered, r.served
        ));
    }

    let pipe = run_pipeline_comparison(&store, &pool);
    let speedup_v1 = pipe.pipelined_qps / V1_BLOCKING_QPS;
    let speedup_blocking = pipe.pipelined_qps / pipe.blocking_qps;
    // The tentpole's pipelining claim, pinned against the v1 baseline:
    // tagged frames + out-of-order completion turn one connection's dead
    // round-trip time into throughput.
    assert!(
        speedup_v1 >= MIN_PIPELINE_SPEEDUP,
        "pipelined connection (window {PIPELINE_WINDOW}) reached only {speedup_v1:.2}x the \
         v1 blocking client ({:.1} vs {V1_BLOCKING_QPS:.1} qps); \
         {MIN_PIPELINE_SPEEDUP}x required",
        pipe.pipelined_qps
    );
    // And the pipelined path must beat the (already much faster) current
    // blocking client on the very same server — pipelining must never be
    // a pessimization.
    assert!(
        speedup_blocking > 1.0,
        "pipelined connection ({:.1} qps) is slower than the blocking client ({:.1} qps)",
        pipe.pipelined_qps,
        pipe.blocking_qps
    );
    let blocking_s = format!("{:.1}", pipe.blocking_qps);
    let pipelined_s = format!("{:.1}", pipe.pipelined_qps);
    let v1_s = format!("{V1_BLOCKING_QPS:.1}");
    let speedup_v1_s = format!("{speedup_v1:.2}");
    let speedup_blocking_s = format!("{speedup_blocking:.2}");
    println!(
        "serve_pipeline 1 connection: blocking {blocking_s} qps, \
         pipelined(window={PIPELINE_WINDOW}) {pipelined_s} qps \
         ({speedup_v1_s}x the v1 blocking client at {v1_s} qps, \
         {speedup_blocking_s}x the current one, peak in-flight {})",
        pipe.peak_in_flight
    );

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"n_vectors\": {N_VECTORS},\n  \"dim\": {DIM},\n  \
         \"k\": {K},\n  \"n_shards\": {N_SHARDS},\n  \"workers\": {WORKERS},\n  \
         \"queue_capacity\": {queue_capacity},\n  \
         \"requests_per_client\": {REQUESTS_PER_CLIENT},\n  \
         \"query_pool_size\": {QUERY_POOL_SIZE},\n  \
         \"repeat_pct\": {REPEAT_PCT},\n  \"loads\": [\n{}\n  ],\n  \
         \"pipeline\": {{\n    \"requests\": {PIPELINE_REQUESTS},\n    \
         \"window\": {PIPELINE_WINDOW},\n    \"peak_in_flight\": {},\n    \
         \"blocking_qps\": {blocking_s},\n    \"v1_blocking_qps\": {v1_s},\n    \
         \"pipelined_qps\": {pipelined_s},\n    \
         \"speedup_vs_v1\": {speedup_v1_s},\n    \
         \"speedup_vs_blocking\": {speedup_blocking_s}\n  }}\n}}\n",
        level_json.join(",\n"),
        pipe.peak_in_flight
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    if let Err(first) = std::fs::write(&out, &json) {
        if let Err(second) = std::fs::write("BENCH_serve.json", &json) {
            eprintln!("warning: could not write BENCH_serve.json ({first}; fallback: {second})");
        }
    }

    // Criterion sample: one uncontended wire round-trip (connect excluded).
    let engine = Arc::new(QueryEngine::new(store.clone(), EngineConfig::lsh().without_cache()));
    let server = Server::bind("127.0.0.1:0", engine, ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let mut g = c.benchmark_group("serve_roundtrip");
    g.bench_function("query_10k_dim128_uncached", |b| {
        b.iter(|| black_box(client.query(&corpus[0], K).expect("query")));
    });
    g.finish();
    drop(client);
    server.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve
}
criterion_main!(benches);
