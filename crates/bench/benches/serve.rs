//! Serving-tier benchmark: the full `tabbin-serve` stack (wire protocol →
//! admission queue → worker pool → micro-batcher → query engine → sharded
//! store) under closed-loop load at several offered concurrencies, over a
//! real loopback TCP connection.
//!
//! Writes `BENCH_serve.json` at the workspace root: per offered-load level
//! the achieved QPS, request latency p50/p99 (successful requests), the
//! shed rate (requests answered `Overloaded` by the bounded admission
//! queue), and the engine cache hit rate. The printed figures are the
//! written figures — both come from the same formatted strings. Clients
//! model a serving workload with recurring hot queries: [`REPEAT_PCT`]% of
//! each client's requests draw from a small shared pool (byte-identical
//! across clients, so the engine's LRU genuinely hits), the rest are fresh
//! jittered queries that keep the storage path honest.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;
use tabbin_index::{EngineConfig, LshParams, QueryEngine, ShardedStore, StoreConfig};
use tabbin_serve::{Client, QueryOutcome, ServeConfig, Server};

const N_VECTORS: usize = 10_000;
const DIM: usize = 128;
const K: usize = 10;
const N_SHARDS: usize = 4;
/// Requests each closed-loop client issues per load level.
const REQUESTS_PER_CLIENT: usize = 400;
/// Offered-load levels: closed-loop client counts. The last level offers
/// far more concurrency than `WORKERS + QUEUE_CAPACITY` can hold, so the
/// admission queue must shed.
const LOADS: [usize; 3] = [2, 8, 32];
const WORKERS: usize = 4;
const QUEUE_CAPACITY: usize = 8;
/// Size of the shared hot-query pool clients repeat from.
const QUERY_POOL_SIZE: usize = 48;
/// Percent of each client's requests drawn from the hot pool; the rest are
/// fresh jittered queries no cache can anticipate.
const REPEAT_PCT: u32 = 75;

/// Same clustered corpus shape as the `index` bench.
fn clustered_corpus(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_clusters = 100;
    let centers: Vec<Vec<f32>> = (0..n_clusters)
        .map(|_| (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect())
        .collect();
    (0..n)
        .map(|i| {
            let c = &centers[i % n_clusters];
            c.iter().map(|x| x + rng.random_range(-0.15f32..0.15)).collect()
        })
        .collect()
}

fn build_store(corpus: &[Vec<f32>]) -> ShardedStore {
    let cfg = StoreConfig::with_lsh(LshParams::default_blocking());
    let mut store = ShardedStore::new(DIM, N_SHARDS, cfg);
    for v in corpus {
        store.insert(v);
    }
    store
}

/// One load level's outcome.
struct LoadResult {
    offered: usize,
    served: usize,
    shed: usize,
    wall_secs: f64,
    /// Latencies of successful requests, seconds.
    latencies: Vec<f64>,
    cache_hit_rate: f64,
}

/// Runs `clients` closed-loop clients against a fresh server over `store`,
/// each issuing [`REQUESTS_PER_CLIENT`] requests: [`REPEAT_PCT`]% drawn
/// from the shared hot-query `pool`, the rest fresh jittered queries.
fn run_load(
    store: &ShardedStore,
    corpus: &[Vec<f32>],
    pool: &Arc<Vec<Vec<f32>>>,
    clients: usize,
) -> LoadResult {
    let engine = Arc::new(QueryEngine::new(store.clone(), EngineConfig::lsh()));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServeConfig { workers: WORKERS, queue_capacity: QUEUE_CAPACITY, ..ServeConfig::default() },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let queries: Vec<Vec<f32>> = {
                let mut rng = StdRng::seed_from_u64(0x5e7e + c as u64);
                let pool = Arc::clone(pool);
                (0..REQUESTS_PER_CLIENT)
                    .map(|i| {
                        if rng.random_range(0u32..100) < REPEAT_PCT {
                            // A hot query, byte-identical across clients.
                            pool[rng.random_range(0..pool.len())].clone()
                        } else {
                            let base = &corpus[(c * REQUESTS_PER_CLIENT + i) % corpus.len()];
                            base.iter().map(|x| x + rng.random_range(-0.02f32..0.02)).collect()
                        }
                    })
                    .collect()
            };
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut latencies = Vec::with_capacity(REQUESTS_PER_CLIENT);
                let mut shed = 0usize;
                for q in &queries {
                    let t = Instant::now();
                    match client.query(q, K).expect("request must answer, never hang") {
                        QueryOutcome::Hits(hits) => {
                            black_box(&hits);
                            latencies.push(t.elapsed().as_secs_f64());
                        }
                        QueryOutcome::Overloaded => shed += 1,
                    }
                }
                (latencies, shed)
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut shed = 0usize;
    for h in handles {
        let (lats, s) = h.join().expect("client thread panicked");
        latencies.extend(lats);
        shed += s;
    }
    let wall_secs = started.elapsed().as_secs_f64();
    let stats = server.stats();
    assert_eq!(stats.shed as usize, shed, "server and client shed counts disagree");
    assert_eq!(stats.served as usize, latencies.len(), "served count mismatch");
    let engine_stats = stats.engine;
    let looked_up = engine_stats.cache_hits + engine_stats.cache_misses;
    server.shutdown();
    LoadResult {
        offered: clients * REQUESTS_PER_CLIENT,
        served: latencies.len(),
        shed,
        wall_secs,
        latencies,
        cache_hit_rate: if looked_up == 0 {
            0.0
        } else {
            engine_stats.cache_hits as f64 / looked_up as f64
        },
    }
}

/// The `q`-quantile of `samples` (nearest-rank), in milliseconds.
fn quantile_ms(samples: &mut [f64], q: f64) -> f64 {
    samples.sort_by(f64::total_cmp);
    let idx = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[idx] * 1e3
}

fn bench_serve(c: &mut Criterion) {
    let corpus = clustered_corpus(N_VECTORS, DIM, 17);
    let store = build_store(&corpus);
    // The hot-query pool every client repeats from: jittered corpus rows,
    // fixed seed, built once so repeats are byte-identical across clients.
    let pool: Arc<Vec<Vec<f32>>> = Arc::new({
        let mut rng = StdRng::seed_from_u64(0x9001);
        (0..QUERY_POOL_SIZE)
            .map(|i| {
                let base = &corpus[(i * 97) % corpus.len()];
                base.iter().map(|x| x + rng.random_range(-0.02f32..0.02)).collect()
            })
            .collect()
    });

    let mut level_json = Vec::new();
    let mut sheds_at_max = 0usize;
    for &clients in &LOADS {
        let mut r = run_load(&store, &corpus, &pool, clients);
        assert!(r.served > 0, "{clients} clients: nothing served");
        assert!(
            r.cache_hit_rate > 0.2,
            "{clients} clients: cache hit rate {:.4} — a {REPEAT_PCT}% hot-pool workload \
             must hit the engine LRU",
            r.cache_hit_rate
        );
        let qps = r.served as f64 / r.wall_secs;
        let p50 = quantile_ms(&mut r.latencies, 0.50);
        let p99 = quantile_ms(&mut r.latencies, 0.99);
        let shed_rate = r.shed as f64 / r.offered as f64;
        if clients == *LOADS.last().expect("loads nonempty") {
            sheds_at_max = r.shed;
        }
        // Format once; print and write the same strings.
        let qps_s = format!("{qps:.1}");
        let p50_s = format!("{p50:.3}");
        let p99_s = format!("{p99:.3}");
        let shed_s = format!("{shed_rate:.4}");
        let hit_s = format!("{:.4}", r.cache_hit_rate);
        println!(
            "serve_{N_VECTORS}x{DIM} load={clients}: {qps_s} qps, \
             latency p50 {p50_s} ms / p99 {p99_s} ms, shed rate {shed_s}, \
             cache hit rate {hit_s} ({}/{} requests served)",
            r.served, r.offered
        );
        level_json.push(format!(
            "    {{\n      \"clients\": {clients},\n      \"offered_requests\": {},\n      \
             \"served\": {},\n      \"qps\": {qps_s},\n      \"latency_ms_p50\": {p50_s},\n      \
             \"latency_ms_p99\": {p99_s},\n      \"shed_rate\": {shed_s},\n      \
             \"cache_hit_rate\": {hit_s}\n    }}",
            r.offered, r.served
        ));
    }
    assert!(
        sheds_at_max > 0,
        "{} closed-loop clients against a {QUEUE_CAPACITY}-deep queue never shed — \
         admission control is not exercised",
        LOADS.last().expect("loads nonempty")
    );

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"n_vectors\": {N_VECTORS},\n  \"dim\": {DIM},\n  \
         \"k\": {K},\n  \"n_shards\": {N_SHARDS},\n  \"workers\": {WORKERS},\n  \
         \"queue_capacity\": {QUEUE_CAPACITY},\n  \
         \"requests_per_client\": {REQUESTS_PER_CLIENT},\n  \
         \"query_pool_size\": {QUERY_POOL_SIZE},\n  \
         \"repeat_pct\": {REPEAT_PCT},\n  \"loads\": [\n{}\n  ]\n}}\n",
        level_json.join(",\n")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    if let Err(first) = std::fs::write(&out, &json) {
        if let Err(second) = std::fs::write("BENCH_serve.json", &json) {
            eprintln!("warning: could not write BENCH_serve.json ({first}; fallback: {second})");
        }
    }

    // Criterion sample: one uncontended wire round-trip (connect excluded).
    let engine = Arc::new(QueryEngine::new(store.clone(), EngineConfig::lsh().without_cache()));
    let server = Server::bind("127.0.0.1:0", engine, ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let mut g = c.benchmark_group("serve_roundtrip");
    g.bench_function("query_10k_dim128_uncached", |b| {
        b.iter(|| black_box(client.query(&corpus[0], K).expect("query")));
    });
    g.finish();
    drop(client);
    server.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve
}
criterion_main!(benches);
