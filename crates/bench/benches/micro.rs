//! Criterion micro-benchmarks for the TabBiN substrate: the costs that
//! dominate pre-training and inference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;
use tabbin_core::batch::BatchEncoder;
use tabbin_core::config::{ModelConfig, SegmentKind};
use tabbin_core::encoding::encode_segment;
use tabbin_core::model::TabBiNModel;
use tabbin_core::variants::train_tokenizer;
use tabbin_core::variants::TabBiNFamily;
use tabbin_corpus::{generate, Dataset, GenOptions};
use tabbin_eval::LshIndex;
use tabbin_table::coords::assign_coordinates;
use tabbin_table::visibility::{visibility_matrix, SeqItem};
use tabbin_tensor::Tensor;
use tabbin_typeinfer::TypeTagger;

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("tensor_matmul");
    for n in [32usize, 64, 128] {
        let a = Tensor::randn(&[n, n], 1.0, 1);
        let b = Tensor::randn(&[n, n], 1.0, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(&b)));
        });
    }
    g.finish();
}

fn bench_visibility(c: &mut Criterion) {
    let mut g = c.benchmark_group("visibility_matrix");
    for n in [32usize, 96, 192] {
        let items: Vec<SeqItem> =
            (0..n).map(|i| SeqItem::cell((i / 8) as u32, (i % 8) as u32)).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(visibility_matrix(&items)));
        });
    }
    g.finish();
}

fn bench_encoding_and_forward(c: &mut Criterion) {
    let corpus = generate(Dataset::CancerKg, &GenOptions { n_tables: Some(10), seed: 1 });
    let tables = corpus.plain_tables();
    let tok = train_tokenizer(&tables);
    let tagger = TypeTagger::new();
    let cfg = ModelConfig::default();
    let model = TabBiNModel::new(cfg, tok.vocab_size(), 1);
    let seq = encode_segment(&tables[0], SegmentKind::DataRow, &tok, &tagger, &cfg);

    c.bench_function("encode_segment_data_row", |b| {
        b.iter(|| black_box(encode_segment(&tables[0], SegmentKind::DataRow, &tok, &tagger, &cfg)));
    });
    c.bench_function("tabbin_forward_embed", |b| {
        b.iter(|| black_box(model.embed(&seq)));
    });
}

fn bench_coordinates(c: &mut Criterion) {
    let corpus = generate(Dataset::CancerKg, &GenOptions { n_tables: Some(30), seed: 2 });
    let bin_table = corpus
        .tables
        .iter()
        .find(|t| t.table.has_vmd())
        .map(|t| t.table.clone())
        .expect("a BiN table");
    c.bench_function("assign_coordinates_bin_table", |b| {
        b.iter(|| black_box(assign_coordinates(&bin_table)));
    });
}

fn bench_lsh(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(3);
    let items: Vec<Vec<f32>> =
        (0..512).map(|_| (0..64).map(|_| rng.random_range(-1.0f32..1.0)).collect()).collect();
    c.bench_function("lsh_build_512x64", |b| {
        b.iter(|| black_box(LshIndex::build(&items, 8, 4, 7)));
    });
    let index = LshIndex::build(&items, 8, 4, 7);
    c.bench_function("lsh_candidates", |b| {
        b.iter(|| black_box(index.candidates(0)));
    });
}

/// Single-table loop vs. the batched pipeline on a 64-table batch at
/// `ModelConfig::tiny()` — the workspace's headline scaling measurement.
///
/// Besides the criterion samples, this writes `BENCH_embed.json` at the
/// workspace root (tables/sec for both paths plus the speedup) so successive
/// PRs accumulate a perf trajectory.
fn bench_embed_batch(c: &mut Criterion) {
    const BATCH: usize = 64;
    let corpus = generate(Dataset::CancerKg, &GenOptions { n_tables: Some(BATCH), seed: 5 });
    let tables = corpus.plain_tables();
    assert_eq!(tables.len(), BATCH, "corpus generator must honor n_tables");
    let family = TabBiNFamily::new(&tables, ModelConfig::tiny(), 5);

    // Warm-up + correctness guard: both paths must agree to within the
    // pinned 1e-5 bound (the fused kernel reassociates float sums slightly).
    let batched = family.embed_tables(&tables);
    let single = family.embed_table(&tables[0]);
    let drift = batched[0].iter().zip(&single).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
    assert!(drift < 1e-5, "batched path diverged by {drift}");

    let time_it = |f: &dyn Fn() -> Vec<Vec<f32>>| -> f64 {
        // Median of 5 timed runs, in tables/sec.
        let mut secs: Vec<f64> = (0..5)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed().as_secs_f64()
            })
            .collect();
        secs.sort_by(f64::total_cmp);
        BATCH as f64 / secs[secs.len() / 2]
    };
    let single_tps = time_it(&|| tables.iter().map(|t| family.embed_table(t)).collect());
    let batched_tps = time_it(&|| BatchEncoder::new(&family).embed_tables(&tables));
    let speedup = batched_tps / single_tps;

    // Format once and use the same strings for the log line and the JSON,
    // so the printed figures and BENCH_embed.json cannot drift apart.
    let single_s = format!("{single_tps:.2}");
    let batched_s = format!("{batched_tps:.2}");
    let speedup_s = format!("{speedup:.3}");
    println!(
        "embed_batch_{BATCH}: single {single_s} tables/s, batched {batched_s} \
         tables/s ({speedup_s}x)"
    );

    let json = format!(
        "{{\n  \"bench\": \"embed_table\",\n  \"config\": \"ModelConfig::tiny\",\n  \
         \"batch_size\": {BATCH},\n  \"single_tables_per_sec\": {single_s},\n  \
         \"batched_tables_per_sec\": {batched_s},\n  \"speedup\": {speedup_s}\n}}\n"
    );
    // Prefer the workspace root; fall back to the working directory (and a
    // warning) so a relocated bench binary still reports instead of dying.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_embed.json");
    if let Err(first) = std::fs::write(&out, &json) {
        if let Err(second) = std::fs::write("BENCH_embed.json", &json) {
            eprintln!("warning: could not write BENCH_embed.json ({first}; fallback: {second})");
        }
    }

    let mut g = c.benchmark_group("embed_64_tables");
    g.bench_function("single", |b| {
        b.iter(|| black_box(tables.iter().map(|t| family.embed_table(t)).collect::<Vec<_>>()));
    });
    g.bench_function("batched", |b| {
        b.iter(|| black_box(family.embed_tables(&tables)));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul, bench_visibility, bench_encoding_and_forward, bench_coordinates,
        bench_lsh, bench_embed_batch
}
criterion_main!(benches);
