//! Criterion micro-benchmarks for the TabBiN substrate: the costs that
//! dominate pre-training and inference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tabbin_core::config::{ModelConfig, SegmentKind};
use tabbin_core::encoding::encode_segment;
use tabbin_core::model::TabBiNModel;
use tabbin_core::variants::train_tokenizer;
use tabbin_corpus::{generate, Dataset, GenOptions};
use tabbin_eval::LshIndex;
use tabbin_table::coords::assign_coordinates;
use tabbin_table::visibility::{visibility_matrix, SeqItem};
use tabbin_tensor::Tensor;
use tabbin_typeinfer::TypeTagger;

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("tensor_matmul");
    for n in [32usize, 64, 128] {
        let a = Tensor::randn(&[n, n], 1.0, 1);
        let b = Tensor::randn(&[n, n], 1.0, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(&b)));
        });
    }
    g.finish();
}

fn bench_visibility(c: &mut Criterion) {
    let mut g = c.benchmark_group("visibility_matrix");
    for n in [32usize, 96, 192] {
        let items: Vec<SeqItem> =
            (0..n).map(|i| SeqItem::cell((i / 8) as u32, (i % 8) as u32)).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(visibility_matrix(&items)));
        });
    }
    g.finish();
}

fn bench_encoding_and_forward(c: &mut Criterion) {
    let corpus = generate(Dataset::CancerKg, &GenOptions { n_tables: Some(10), seed: 1 });
    let tables = corpus.plain_tables();
    let tok = train_tokenizer(&tables);
    let tagger = TypeTagger::new();
    let cfg = ModelConfig::default();
    let model = TabBiNModel::new(cfg, tok.vocab_size(), 1);
    let seq = encode_segment(&tables[0], SegmentKind::DataRow, &tok, &tagger, &cfg);

    c.bench_function("encode_segment_data_row", |b| {
        b.iter(|| {
            black_box(encode_segment(&tables[0], SegmentKind::DataRow, &tok, &tagger, &cfg))
        });
    });
    c.bench_function("tabbin_forward_embed", |b| {
        b.iter(|| black_box(model.embed(&seq)));
    });
}

fn bench_coordinates(c: &mut Criterion) {
    let corpus = generate(Dataset::CancerKg, &GenOptions { n_tables: Some(30), seed: 2 });
    let bin_table = corpus
        .tables
        .iter()
        .find(|t| t.table.has_vmd())
        .map(|t| t.table.clone())
        .expect("a BiN table");
    c.bench_function("assign_coordinates_bin_table", |b| {
        b.iter(|| black_box(assign_coordinates(&bin_table)));
    });
}

fn bench_lsh(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(3);
    let items: Vec<Vec<f32>> = (0..512)
        .map(|_| (0..64).map(|_| rng.random_range(-1.0f32..1.0)).collect())
        .collect();
    c.bench_function("lsh_build_512x64", |b| {
        b.iter(|| black_box(LshIndex::build(&items, 8, 4, 7)));
    });
    let index = LshIndex::build(&items, 8, 4, 7);
    c.bench_function("lsh_candidates", |b| {
        b.iter(|| black_box(index.candidates(0)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul, bench_visibility, bench_encoding_and_forward, bench_coordinates, bench_lsh
}
criterion_main!(benches);
