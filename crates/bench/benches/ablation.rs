//! Ablation benches for the design choices DESIGN.md calls out: what each
//! TabBiN mechanism costs at runtime (the accuracy effect is measured by
//! `exp_table12`/`exp_table13`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tabbin_core::config::{AblationFlags, ModelConfig, SegmentKind};
use tabbin_core::encoding::encode_segment;
use tabbin_core::model::TabBiNModel;
use tabbin_core::variants::train_tokenizer;
use tabbin_corpus::{generate, Dataset, GenOptions};
use tabbin_eval::{cosine, LshIndex};
use tabbin_typeinfer::TypeTagger;

/// Forward-pass cost with and without each embedding/attention component.
fn bench_forward_ablations(c: &mut Criterion) {
    let corpus = generate(Dataset::CancerKg, &GenOptions { n_tables: Some(8), seed: 1 });
    let tables = corpus.plain_tables();
    let tok = train_tokenizer(&tables);
    let tagger = TypeTagger::new();
    let variants: [(&str, AblationFlags); 5] = [
        ("full", AblationFlags::full()),
        ("no_visibility", AblationFlags::no_visibility()),
        ("no_type", AblationFlags::no_type_inference()),
        ("no_units", AblationFlags::no_units_nesting()),
        ("no_coords", AblationFlags::no_coordinates()),
    ];
    let mut g = c.benchmark_group("forward_ablation");
    for (name, flags) in variants {
        let cfg = ModelConfig::default().with_ablation(flags);
        let model = TabBiNModel::new(cfg, tok.vocab_size(), 1);
        let seq = encode_segment(&tables[0], SegmentKind::DataRow, &tok, &tagger, &cfg);
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| black_box(model.embed(&seq)));
        });
    }
    g.finish();
}

/// LSH blocking versus exhaustive all-pairs cosine search.
fn bench_blocking_vs_exhaustive(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(5);
    let items: Vec<Vec<f32>> =
        (0..256).map(|_| (0..48).map(|_| rng.random_range(-1.0f32..1.0)).collect()).collect();
    let index = LshIndex::build(&items, 8, 4, 9);
    let mut g = c.benchmark_group("column_matching");
    g.bench_function("exhaustive_cosine", |b| {
        b.iter(|| {
            let mut best = (0usize, -1.0f64);
            for (i, v) in items.iter().enumerate().skip(1) {
                let s = cosine(&items[0], v);
                if s > best.1 {
                    best = (i, s);
                }
            }
            black_box(best)
        });
    });
    g.bench_function("lsh_blocked_cosine", |b| {
        b.iter(|| {
            let mut best = (0usize, -1.0f64);
            for i in index.candidates(0) {
                let s = cosine(&items[0], &items[i]);
                if s > best.1 {
                    best = (i, s);
                }
            }
            black_box(best)
        });
    });
    g.finish();
}

/// Segment separation cost: encoding four segment sequences versus one
/// whole-table sequence of comparable size.
fn bench_segmentation(c: &mut Criterion) {
    let corpus = generate(Dataset::CovidKg, &GenOptions { n_tables: Some(8), seed: 7 });
    let tables = corpus.plain_tables();
    let tok = train_tokenizer(&tables);
    let tagger = TypeTagger::new();
    let cfg = ModelConfig::default();
    c.bench_function("encode_four_segments", |b| {
        b.iter(|| {
            for kind in SegmentKind::ALL {
                black_box(encode_segment(&tables[0], kind, &tok, &tagger, &cfg));
            }
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_forward_ablations, bench_blocking_vs_exhaustive, bench_segmentation
}
criterion_main!(benches);
