//! Retrieval-layer micro-benchmark: `tabbin_index::VectorStore` batched
//! top-k against the pre-store baseline (a scalar cosine scan per query).
//!
//! Besides the criterion samples, this writes `BENCH_index.json` at the
//! workspace root — QPS for both paths, the speedup, and recall@10 of the
//! LSH-blocked path against exact scan — so successive PRs accumulate a
//! perf trajectory. The printed figures are the written figures: both come
//! from the same formatted strings, so the log and the JSON cannot drift.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;
use tabbin_eval::cosine;
use tabbin_index::{LshParams, StoreConfig, VectorStore};

/// Corpus size / dimension of the headline measurement.
const N_VECTORS: usize = 10_000;
const DIM: usize = 128;
const K: usize = 10;
/// Queries per timed batch.
const N_QUERIES: usize = 256;

/// Clustered corpus: 100 topic directions with jittered members — the shape
/// table/column embeddings actually have (tables cluster by topic), and the
/// regime LSH banding is tuned for.
fn clustered_corpus(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_clusters = 100;
    let centers: Vec<Vec<f32>> = (0..n_clusters)
        .map(|_| (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect())
        .collect();
    (0..n)
        .map(|i| {
            let c = &centers[i % n_clusters];
            c.iter().map(|x| x + rng.random_range(-0.15f32..0.15)).collect()
        })
        .collect()
}

/// The pre-store baseline: one full scalar-cosine scan plus top-k selection
/// per query, exactly what `rank_by_cosine` callers paid before the
/// retrieval layer existed.
fn exact_scan_topk(corpus: &[Vec<f32>], q: &[f32], k: usize) -> Vec<(usize, f64)> {
    let mut scored: Vec<(usize, f64)> =
        corpus.iter().enumerate().map(|(i, v)| (i, cosine(q, v))).collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

fn bench_index(c: &mut Criterion) {
    let corpus = clustered_corpus(N_VECTORS, DIM, 17);
    let queries: Vec<Vec<f32>> = corpus.iter().take(N_QUERIES).cloned().collect();

    let cfg = StoreConfig::with_lsh(LshParams::default_blocking());
    let mut store = VectorStore::new(DIM, cfg);
    for v in &corpus {
        store.insert(v);
    }
    assert_eq!(store.len(), N_VECTORS);
    assert!(store.stats().sealed_segments >= 2, "10k rows should span several sealed segments");

    // Recall@10 of the LSH-blocked store against the exact baseline, over
    // the timed query set.
    let blocked = store.query_batch(&queries, K);
    let mut hit = 0usize;
    let mut want = 0usize;
    for (q, hits) in queries.iter().zip(&blocked) {
        let exact = exact_scan_topk(&corpus, q, K);
        want += exact.len();
        hit += exact.iter().filter(|(i, _)| hits.iter().any(|h| h.id == *i as u64)).count();
    }
    let recall = hit as f64 / want as f64;

    // QPS: median of 5 timed batches each.
    let time_qps = |f: &dyn Fn() -> usize| -> f64 {
        let mut qps: Vec<f64> = (0..5)
            .map(|_| {
                let start = Instant::now();
                let n = black_box(f());
                n as f64 / start.elapsed().as_secs_f64()
            })
            .collect();
        qps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        qps[qps.len() / 2]
    };
    let exact_qps = time_qps(&|| {
        // The baseline is slow enough that a fraction of the batch gives a
        // stable per-query figure.
        let sample = &queries[..32];
        for q in sample {
            black_box(exact_scan_topk(&corpus, q, K));
        }
        sample.len()
    });
    let batched_qps = time_qps(&|| {
        black_box(store.query_batch(&queries, K));
        queries.len()
    });
    let speedup = batched_qps / exact_qps;

    // Format once, print and write the same strings.
    let exact_s = format!("{exact_qps:.1}");
    let batched_s = format!("{batched_qps:.1}");
    let speedup_s = format!("{speedup:.2}");
    let recall_s = format!("{recall:.4}");
    println!(
        "index_{N_VECTORS}x{DIM}: exact scan {exact_s} qps, store query_batch {batched_s} qps \
         ({speedup_s}x), recall@{K} {recall_s}"
    );
    let json = format!(
        "{{\n  \"bench\": \"vector_store_query\",\n  \"n_vectors\": {N_VECTORS},\n  \
         \"dim\": {DIM},\n  \"k\": {K},\n  \"n_queries\": {N_QUERIES},\n  \
         \"exact_scan_qps\": {exact_s},\n  \"batched_lsh_qps\": {batched_s},\n  \
         \"speedup\": {speedup_s},\n  \"recall_at_10\": {recall_s}\n}}\n"
    );
    // Prefer the workspace root; fall back to the working directory (and a
    // warning) so a relocated bench binary still reports instead of dying.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_index.json");
    if let Err(first) = std::fs::write(&out, &json) {
        if let Err(second) = std::fs::write("BENCH_index.json", &json) {
            eprintln!("warning: could not write BENCH_index.json ({first}; fallback: {second})");
        }
    }

    let mut g = c.benchmark_group("vector_store_10k_query");
    g.bench_function("exact_scan_baseline", |b| {
        b.iter(|| black_box(exact_scan_topk(&corpus, &queries[0], K)));
    });
    g.bench_function("store_query_lsh", |b| {
        b.iter(|| black_box(store.query(&queries[0], K)));
    });
    g.bench_function("store_query_batch_lsh", |b| {
        b.iter(|| black_box(store.query_batch(&queries[..32], K)));
    });
    g.finish();

    // Lifecycle costs: upsert throughput and snapshot round-trip.
    let mut g = c.benchmark_group("vector_store_lifecycle");
    g.bench_function("upsert", |b| {
        let mut s = VectorStore::new(DIM, StoreConfig::with_lsh(LshParams::default_blocking()));
        let mut next = 0u64;
        b.iter(|| {
            s.upsert(next % 4096, &corpus[(next as usize) % corpus.len()]);
            next += 1;
            // Overwrites tombstone the old rows; compact periodically so the
            // store stays near steady state instead of accreting dead
            // segments across criterion's many iterations. The compaction
            // cost amortizes to a small, realistic share of each upsert.
            if s.stats().tombstones > 8192 {
                s.compact();
            }
        });
    });
    g.bench_function("compact_4k", |b| {
        let mut s = VectorStore::new(DIM, StoreConfig::with_lsh(LshParams::default_blocking()));
        for v in corpus.iter().take(4096) {
            s.insert(v);
        }
        b.iter(|| {
            s.compact();
            black_box(s.len())
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_index
}
criterion_main!(benches);
