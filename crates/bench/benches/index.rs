//! Retrieval-layer micro-benchmark: `tabbin_index` batched top-k against
//! the pre-store baseline (a scalar cosine scan per query), for both
//! storage tiers — one `VectorStore` and the sharded tier (`ShardedStore`,
//! 4 shards) — each served through the `QueryEngine` (`Queryable`-trait)
//! path the whole workspace uses. The engines run cache-off and at probe
//! width 1, so the figures measure storage, not result reuse; a separate
//! `cache` entry reports the LRU hit path on repeated queries.
//!
//! The quantized scoring tier is measured alongside: the same corpus behind
//! `ScoringTier::Quantized`, driven through `EngineConfig::exact` so every
//! query is a full coarse scan over the packed sign-bit signatures (the
//! popcount Hamming kernel) followed by an f32 re-rank of the top
//! `rerank_factor × k` — the tier's headline trade, a scan over ~64×-denser
//! data, measured without LSH pruning in the way.
//!
//! The IVF-routed tier is the headline of the routing PR: the same corpus
//! behind a k-means coarse quantizer (`IvfRouter`, 16 cells) with the
//! engine's Auto `nprobe` policy bounding each query to its 4 nearest
//! cells — timed pairwise against a hash-routed quantized store of the
//! *same* shard count (hash routing forces full fan-out, so the pair
//! isolates what learned placement buys at fixed topology) and asserted
//! ≥ 1.5× it at recall@10 ≥ 0.95.
//!
//! Besides the criterion samples, this writes `BENCH_index.json` at the
//! workspace root — QPS for every path, the speedup, recall@10 against
//! exact scan (including the quantized tier's, pinned ≥ 0.99, and the
//! routed tier's, pinned ≥ 0.95 with `shards_probed < nlist`), and (for
//! the sharded tier) policy-driven compaction pause p50/p99 under
//! steady-state overwrite churn — so successive PRs accumulate a perf
//! trajectory. The printed figures are the written
//! figures: both come from the same formatted strings, so the log and the
//! JSON cannot drift.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;
use tabbin_eval::cosine;
use tabbin_index::{
    CompactionPolicy, DurabilityPolicy, EngineConfig, IvfRouter, LshParams, NprobePolicy,
    QueryEngine, ShardedStore, StoreConfig, VectorStore, DEFAULT_RERANK_FACTOR,
};

/// Corpus size / dimension of the headline measurement.
const N_VECTORS: usize = 10_000;
const DIM: usize = 128;
const K: usize = 10;
/// Queries per timed batch.
const N_QUERIES: usize = 256;
/// Shards in the sharded tier's measurement.
const N_SHARDS: usize = 4;
/// Cells (= shards) of the IVF-routed measurement; at 10k rows the
/// engine's Auto policy resolves `nprobe = NLIST / 4`.
const NLIST: usize = 16;

/// Clustered corpus: 250 topic directions with jittered members — the shape
/// table/column embeddings actually have (tables cluster by topic), and the
/// regime both LSH banding and sign-bit quantization are tuned for. Topic
/// population (10k / 250 = 40 rows) stays within the quantized tier's
/// re-rank budget (`rerank_factor × k` = 40 at k = 10), the regime where a
/// sign-bit coarse pass is exact-by-construction: every same-topic row fits
/// in the coarse set, so the f32 re-rank sees the full true top-k.
fn clustered_corpus(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_clusters = 250;
    let centers: Vec<Vec<f32>> = (0..n_clusters)
        .map(|_| (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect())
        .collect();
    (0..n)
        .map(|i| {
            let c = &centers[i % n_clusters];
            c.iter().map(|x| x + rng.random_range(-0.15f32..0.15)).collect()
        })
        .collect()
}

/// The pre-store baseline: one full scalar-cosine scan plus top-k selection
/// per query, exactly what `rank_by_cosine` callers paid before the
/// retrieval layer existed.
fn exact_scan_topk(corpus: &[Vec<f32>], q: &[f32], k: usize) -> Vec<(usize, f64)> {
    let mut scored: Vec<(usize, f64)> =
        corpus.iter().enumerate().map(|(i, v)| (i, cosine(q, v))).collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

/// Recall of `hits` (per query) against precomputed exact top-k lists —
/// the exact baseline depends only on (corpus, queries), so callers
/// compute it once and score every tier against the same lists.
fn recall_vs_exact(exact_lists: &[Vec<(usize, f64)>], hits: &[Vec<tabbin_index::Hit>]) -> f64 {
    let mut hit = 0usize;
    let mut want = 0usize;
    for (exact, got) in exact_lists.iter().zip(hits) {
        want += exact.len();
        hit += exact.iter().filter(|(i, _)| got.iter().any(|h| h.id == *i as u64)).count();
    }
    hit as f64 / want as f64
}

/// The `q`-quantile of `samples` (nearest-rank), in milliseconds.
fn quantile_ms(samples: &mut [f64], q: f64) -> f64 {
    samples.sort_by(f64::total_cmp);
    let idx = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[idx] * 1e3
}

fn bench_index(c: &mut Criterion) {
    let corpus = clustered_corpus(N_VECTORS, DIM, 17);
    let queries: Vec<Vec<f32>> = corpus.iter().take(N_QUERIES).cloned().collect();

    let cfg = StoreConfig::with_lsh(LshParams::default_blocking());
    let mut store = VectorStore::new(DIM, cfg);
    for v in &corpus {
        store.insert(v);
    }
    assert_eq!(store.len(), N_VECTORS);
    assert!(store.stats().sealed_segments >= 2, "10k rows should span several sealed segments");

    // The sharded tier over the same corpus and blocking geometry.
    let mut sharded = ShardedStore::new(DIM, N_SHARDS, cfg);
    for v in &corpus {
        sharded.insert(v);
    }
    assert_eq!(sharded.len(), N_VECTORS);
    assert!(sharded.stats().shards.iter().all(|s| s.live > 0), "hash routing left a shard empty");

    // The quantized tier over the same corpus and blocking geometry: full
    // coarse sign-bit scans (`ExactScan` source, via `EngineConfig::exact`),
    // so its figure measures the packed popcount kernel plus f32 re-rank —
    // a full scan over ~64×-denser data — not LSH pruning.
    let qcfg = StoreConfig::quantized(LshParams::default_blocking());
    let mut quant = VectorStore::new(DIM, qcfg);
    for v in &corpus {
        quant.insert(v);
    }
    let mut quant_sharded = ShardedStore::new(DIM, N_SHARDS, qcfg);
    for v in &corpus {
        quant_sharded.insert(v);
    }

    // The IVF-routed tier: a k-means coarse quantizer trained on an
    // every-4th corpus sample routes each row to its nearest-centroid
    // shard, and queries probe only the `nprobe` nearest cells — the same
    // quantized scoring inside each probed shard, over a quarter of the
    // corpus per query.
    let sample: Vec<Vec<f32>> = corpus.iter().step_by(4).cloned().collect();
    let router = Arc::new(IvfRouter::train(&sample, NLIST, qcfg.seed));
    let mut routed = ShardedStore::with_router(DIM, NLIST, qcfg, router);
    for v in &corpus {
        routed.insert(v);
    }
    assert_eq!(routed.len(), N_VECTORS);
    // Its hash-routed twin: same shard count, same scoring tier, but ids
    // spread by splitmix64 — so every query must fan to all 16 shards.
    // This is the routed tier's paired baseline: the only variable between
    // the two stores is the router.
    let mut hash16 = ShardedStore::new(DIM, NLIST, qcfg);
    for v in &corpus {
        hash16.insert(v);
    }
    assert_eq!(hash16.len(), N_VECTORS);

    // All tiers serve through the `QueryEngine` (the `Queryable`-trait
    // path every consumer uses). Cache off and probe width 1: these rounds
    // measure storage scans, not result reuse.
    let storage_path = EngineConfig { probe_width: 1, ..EngineConfig::lsh() }.without_cache();
    let store = QueryEngine::new(store, storage_path);
    let sharded = QueryEngine::new(sharded, storage_path);
    let coarse_path = EngineConfig::exact().without_cache();
    let quant = QueryEngine::new(quant, coarse_path);
    let quant_sharded = QueryEngine::new(quant_sharded, coarse_path);
    let hash16 = QueryEngine::new(hash16, coarse_path);
    assert!(quant.plan(K).quantized, "quantized store must plan a quantized pass");
    assert_eq!(hash16.plan(K).nprobe, NLIST, "hash routing must plan full fan-out");
    // The routed engine lets the Auto policy pick the probe budget: 10k
    // rows over 16 learned cells is deep enough to drop to NLIST / 4.
    let routed =
        QueryEngine::new(routed, EngineConfig { nprobe: NprobePolicy::Auto, ..coarse_path });
    let nprobe = routed.plan(K).nprobe;
    assert_eq!(nprobe, NLIST / 4, "Auto nprobe must go sublinear at this depth");

    // Recall@10 against the exact baseline, over the timed query set.
    let exact_lists: Vec<Vec<(usize, f64)>> =
        queries.iter().map(|q| exact_scan_topk(&corpus, q, K)).collect();
    let recall = recall_vs_exact(&exact_lists, &store.query_batch(&queries, K));
    let sharded_recall = recall_vs_exact(&exact_lists, &sharded.query_batch(&queries, K));
    let quant_recall = recall_vs_exact(&exact_lists, &quant.query_batch(&queries, K));
    let routed_recall = recall_vs_exact(&exact_lists, &routed.query_batch(&queries, K));
    let hash16_recall = recall_vs_exact(&exact_lists, &hash16.query_batch(&queries, K));
    assert!(hash16_recall >= 0.99, "full fan-out baseline recall@10 {hash16_recall:.4} degraded");

    // QPS: median of 5 timed batches each.
    let time_qps = |f: &dyn Fn() -> usize| -> f64 {
        let mut qps: Vec<f64> = (0..5)
            .map(|_| {
                let start = Instant::now();
                let n = black_box(f());
                n as f64 / start.elapsed().as_secs_f64()
            })
            .collect();
        qps.sort_by(f64::total_cmp);
        qps[qps.len() / 2]
    };
    let exact_qps = time_qps(&|| {
        // The baseline is slow enough that a fraction of the batch gives a
        // stable per-query figure.
        let sample = &queries[..32];
        for q in sample {
            black_box(exact_scan_topk(&corpus, q, K));
        }
        sample.len()
    });
    // The two store tiers are compared with paired, interleaved rounds —
    // each round times one full batch on each — so clock/thermal drift
    // between measurement instants hits both tiers equally instead of
    // biasing whichever ran later. Medians over 9 rounds.
    let mut single_rounds = Vec::with_capacity(9);
    let mut sharded_rounds = Vec::with_capacity(9);
    let mut quant_rounds = Vec::with_capacity(9);
    let mut quant_sharded_rounds = Vec::with_capacity(9);
    let mut routed_rounds = Vec::with_capacity(9);
    let mut hash16_rounds = Vec::with_capacity(9);
    for _ in 0..9 {
        let start = Instant::now();
        black_box(store.query_batch(&queries, K));
        single_rounds.push(queries.len() as f64 / start.elapsed().as_secs_f64());
        let start = Instant::now();
        black_box(sharded.query_batch(&queries, K));
        sharded_rounds.push(queries.len() as f64 / start.elapsed().as_secs_f64());
        let start = Instant::now();
        black_box(quant.query_batch(&queries, K));
        quant_rounds.push(queries.len() as f64 / start.elapsed().as_secs_f64());
        let start = Instant::now();
        black_box(quant_sharded.query_batch(&queries, K));
        quant_sharded_rounds.push(queries.len() as f64 / start.elapsed().as_secs_f64());
        let start = Instant::now();
        black_box(routed.query_batch(&queries, K));
        routed_rounds.push(queries.len() as f64 / start.elapsed().as_secs_f64());
        let start = Instant::now();
        black_box(hash16.query_batch(&queries, K));
        hash16_rounds.push(queries.len() as f64 / start.elapsed().as_secs_f64());
    }
    single_rounds.sort_by(f64::total_cmp);
    sharded_rounds.sort_by(f64::total_cmp);
    quant_rounds.sort_by(f64::total_cmp);
    quant_sharded_rounds.sort_by(f64::total_cmp);
    routed_rounds.sort_by(f64::total_cmp);
    hash16_rounds.sort_by(f64::total_cmp);
    let batched_qps = single_rounds[single_rounds.len() / 2];
    let sharded_qps = sharded_rounds[sharded_rounds.len() / 2];
    let quant_qps = quant_rounds[quant_rounds.len() / 2];
    let quant_sharded_qps = quant_sharded_rounds[quant_sharded_rounds.len() / 2];
    let routed_qps = routed_rounds[routed_rounds.len() / 2];
    let hash16_qps = hash16_rounds[hash16_rounds.len() / 2];
    let shards_probed = routed.store().stats().avg_shards_probed();
    let speedup = batched_qps / exact_qps;
    // The ISSUE 6 acceptance bars: the coarse pass must at least double the
    // LSH-blocked engine path while keeping recall@10 within 1% of exact.
    assert!(
        quant_qps >= 2.0 * batched_qps,
        "quantized coarse pass {quant_qps:.1} qps below 2x the LSH path {batched_qps:.1} qps"
    );
    assert!(quant_recall >= 0.99, "quantized recall@10 {quant_recall:.4} below 0.99");
    // The ISSUE 7 bar: the sharded quantized pass must not fall behind the
    // sharded LSH path (it regressed when every (query, shard) task paid
    // its own entry-bar probe; the shard-union bar restores the edge).
    assert!(
        quant_sharded_qps >= sharded_qps,
        "sharded quantized pass {quant_sharded_qps:.1} qps below the sharded LSH path \
         {sharded_qps:.1} qps — the shard-union entry bar is not paying off"
    );
    // The ISSUE 9 bars: at the same 16-shard topology, nprobe-bounded routed
    // scans must beat hash routing's forced full fan-out by 1.5x while
    // holding recall@10 at 0.95, and the probe counters must prove the
    // scans were actually sublinear.
    assert!(
        routed_qps >= 1.5 * hash16_qps,
        "routed pass {routed_qps:.1} qps below 1.5x the hash-routed {NLIST}-shard pass \
         {hash16_qps:.1} qps — nprobe={nprobe} is not paying for itself"
    );
    assert!(routed_recall >= 0.95, "routed recall@10 {routed_recall:.4} below 0.95");
    assert!(
        shards_probed < NLIST as f64,
        "routed store probed {shards_probed:.1} of {NLIST} shards per query — not sublinear"
    );

    // The engine's LRU hit path: a cached engine over the same sharded
    // tier, warmed once, then timed on pure repeats — what a serving
    // workload with recurring queries actually pays.
    let cached = QueryEngine::new(
        sharded.store().clone(),
        EngineConfig { probe_width: 1, ..EngineConfig::lsh() },
    );
    let warm = cached.query_batch(&queries, K);
    assert_eq!(warm, sharded.query_batch(&queries, K), "cached engine diverged from storage");
    let cache_qps = time_qps(&|| {
        black_box(cached.query_batch(&queries, K));
        queries.len()
    });
    assert_eq!(cached.stats().store_queries, queries.len() as u64, "timed rounds hit storage");

    // Compaction pauses under steady-state overwrite churn, policy-driven:
    // each upsert over a live id tombstones the old row; every shard
    // compacts itself at 25% dead rows. No caller ever calls compact().
    let churn_policy = CompactionPolicy { max_tombstone_ratio: 0.25, max_segments: 64 };
    let mut churn = ShardedStore::new(DIM, N_SHARDS, StoreConfig { policy: churn_policy, ..cfg });
    const CHURN_LIVE: usize = 8192;
    const CHURN_WRITES: usize = 24_000;
    for v in corpus.iter().take(CHURN_LIVE) {
        churn.insert(v);
    }
    for i in 0..CHURN_WRITES {
        churn.upsert((i % CHURN_LIVE) as u64, &corpus[i % corpus.len()]);
    }
    let mut pauses = churn.compaction_pauses();
    assert!(
        pauses.len() >= N_SHARDS,
        "churn of {CHURN_WRITES} writes must trigger the policy in every shard"
    );
    let n_compactions = churn.compactions();
    let pause_p50 = quantile_ms(&mut pauses, 0.50);
    let pause_p99 = quantile_ms(&mut pauses, 0.99);

    // What durability costs on the ingest path: the same upsert stream
    // against a WAL-backed store at each fsync policy. `Never` appends but
    // never syncs (the group-commit floor); `Interval(10)` is the serving
    // candidate — group commit must keep it within 1.5x of that floor; a
    // per-mutation `Always` fsync is measured on fewer rows because it is
    // honestly, unavoidably slow.
    const DURABLE_ROWS: usize = 4000;
    const ALWAYS_ROWS: usize = 600;
    let ingest_qps = |policy: DurabilityPolicy, rows: usize| -> f64 {
        let dir =
            std::env::temp_dir().join(format!("tabbin_bench_wal_{}_{policy}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut durable = ShardedStore::open_durable(
            &dir,
            DIM,
            N_SHARDS,
            StoreConfig { durability: policy, ..cfg },
        )
        .expect("durable open");
        let start = Instant::now();
        for (i, v) in corpus.iter().take(rows).enumerate() {
            durable.upsert(i as u64, v);
        }
        let qps = rows as f64 / start.elapsed().as_secs_f64();
        drop(durable);
        let _ = std::fs::remove_dir_all(&dir);
        qps
    };
    let never_qps = ingest_qps(DurabilityPolicy::Never, DURABLE_ROWS);
    let interval_qps = ingest_qps(DurabilityPolicy::Interval(10), DURABLE_ROWS);
    let always_qps = ingest_qps(DurabilityPolicy::Always, ALWAYS_ROWS);
    // The ISSUE 10 bar: group commit must absorb the fsync cost.
    assert!(
        interval_qps >= never_qps / 1.5,
        "Interval(10) ingest {interval_qps:.1} qps fell below 1/1.5 of the Never floor \
         {never_qps:.1} qps — group commit is not absorbing the fsyncs"
    );

    // Format once, print and write the same strings.
    let exact_s = format!("{exact_qps:.1}");
    let batched_s = format!("{batched_qps:.1}");
    let speedup_s = format!("{speedup:.2}");
    let recall_s = format!("{recall:.4}");
    let sharded_qps_s = format!("{sharded_qps:.1}");
    let sharded_recall_s = format!("{sharded_recall:.4}");
    let quant_qps_s = format!("{quant_qps:.1}");
    let quant_sharded_qps_s = format!("{quant_sharded_qps:.1}");
    let quant_recall_s = format!("{quant_recall:.4}");
    let routed_qps_s = format!("{routed_qps:.1}");
    let hash16_qps_s = format!("{hash16_qps:.1}");
    let routed_recall_s = format!("{routed_recall:.4}");
    let routed_speedup_s = format!("{:.2}", routed_qps / hash16_qps);
    let shards_probed_s = format!("{shards_probed:.2}");
    let cache_qps_s = format!("{cache_qps:.1}");
    let pause_p50_s = format!("{pause_p50:.3}");
    let pause_p99_s = format!("{pause_p99:.3}");
    let never_qps_s = format!("{never_qps:.1}");
    let interval_qps_s = format!("{interval_qps:.1}");
    let always_qps_s = format!("{always_qps:.1}");
    println!(
        "index_{N_VECTORS}x{DIM}: exact scan {exact_s} qps, engine(store) query_batch \
         {batched_s} qps ({speedup_s}x), recall@{K} {recall_s}"
    );
    println!(
        "index_{N_VECTORS}x{DIM} quantized(rerank {DEFAULT_RERANK_FACTOR}): coarse pass \
         {quant_qps_s} qps (sharded {quant_sharded_qps_s} qps), recall@{K} {quant_recall_s}"
    );
    println!(
        "index_{N_VECTORS}x{DIM} sharded({N_SHARDS}): engine query_batch {sharded_qps_s} qps, \
         recall@{K} {sharded_recall_s}, cache hit path {cache_qps_s} qps, \
         {n_compactions} policy compactions \
         (pause p50 {pause_p50_s} ms, p99 {pause_p99_s} ms over {CHURN_WRITES} writes)"
    );
    println!(
        "index_{N_VECTORS}x{DIM} routed(nlist {NLIST}, nprobe {nprobe}): {routed_qps_s} qps \
         ({routed_speedup_s}x the hash-routed {NLIST}-shard pass at {hash16_qps_s} qps), \
         recall@{K} {routed_recall_s}, {shards_probed_s}/{NLIST} shards probed per query"
    );
    println!(
        "index_{DURABLE_ROWS}x{DIM} durable ingest: never {never_qps_s} qps, \
         interval(10ms) {interval_qps_s} qps, always {always_qps_s} qps \
         ({ALWAYS_ROWS} rows for always)"
    );
    let json = format!(
        "{{\n  \"bench\": \"vector_store_query\",\n  \"n_vectors\": {N_VECTORS},\n  \
         \"dim\": {DIM},\n  \"k\": {K},\n  \"n_queries\": {N_QUERIES},\n  \
         \"exact_scan_qps\": {exact_s},\n  \"batched_lsh_qps\": {batched_s},\n  \
         \"speedup\": {speedup_s},\n  \"recall_at_10\": {recall_s},\n  \
         \"quantized_coarse_qps\": {quant_qps_s},\n  \
         \"quantized_recall_at_10\": {quant_recall_s},\n  \
         \"quantized_rerank_factor\": {DEFAULT_RERANK_FACTOR},\n  \
         \"cache_hit_qps\": {cache_qps_s},\n  \
         \"sharded\": {{\n    \"n_shards\": {N_SHARDS},\n    \
         \"query_batch_qps\": {sharded_qps_s},\n    \
         \"recall_at_10\": {sharded_recall_s},\n    \
         \"quantized_coarse_qps\": {quant_sharded_qps_s},\n    \
         \"churn_writes\": {CHURN_WRITES},\n    \
         \"compactions\": {n_compactions},\n    \
         \"compaction_pause_ms_p50\": {pause_p50_s},\n    \
         \"compaction_pause_ms_p99\": {pause_p99_s}\n  }},\n  \
         \"routed\": {{\n    \"nlist\": {NLIST},\n    \
         \"nprobe\": {nprobe},\n    \
         \"query_batch_qps\": {routed_qps_s},\n    \
         \"hash_routed_qps\": {hash16_qps_s},\n    \
         \"speedup_vs_hash_routed\": {routed_speedup_s},\n    \
         \"recall_at_10\": {routed_recall_s},\n    \
         \"shards_probed\": {shards_probed_s}\n  }},\n  \
         \"durability\": {{\n    \"ingest_rows\": {DURABLE_ROWS},\n    \
         \"always_rows\": {ALWAYS_ROWS},\n    \
         \"never_qps\": {never_qps_s},\n    \
         \"interval10_qps\": {interval_qps_s},\n    \
         \"always_qps\": {always_qps_s}\n  }}\n}}\n"
    );
    // Prefer the workspace root; fall back to the working directory (and a
    // warning) so a relocated bench binary still reports instead of dying.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_index.json");
    if let Err(first) = std::fs::write(&out, &json) {
        if let Err(second) = std::fs::write("BENCH_index.json", &json) {
            eprintln!("warning: could not write BENCH_index.json ({first}; fallback: {second})");
        }
    }

    let mut g = c.benchmark_group("vector_store_10k_query");
    g.bench_function("exact_scan_baseline", |b| {
        b.iter(|| black_box(exact_scan_topk(&corpus, &queries[0], K)));
    });
    g.bench_function("store_query_lsh", |b| {
        b.iter(|| black_box(store.query(&queries[0], K)));
    });
    g.bench_function("store_query_batch_lsh", |b| {
        b.iter(|| black_box(store.query_batch(&queries[..32], K)));
    });
    g.bench_function("sharded_query_batch_lsh", |b| {
        b.iter(|| black_box(sharded.query_batch(&queries[..32], K)));
    });
    g.bench_function("quantized_query_batch_coarse", |b| {
        b.iter(|| black_box(quant.query_batch(&queries[..32], K)));
    });
    g.bench_function("routed_query_batch_nprobe", |b| {
        b.iter(|| black_box(routed.query_batch(&queries[..32], K)));
    });
    g.finish();

    // Lifecycle costs: upsert throughput (compaction included — the policy
    // amortizes rewrites into the write stream) and explicit compaction.
    let mut g = c.benchmark_group("vector_store_lifecycle");
    g.bench_function("upsert_policy_compacted", |b| {
        let mut s = VectorStore::new(DIM, StoreConfig::with_lsh(LshParams::default_blocking()));
        let mut next = 0u64;
        b.iter(|| {
            s.upsert(next % 4096, &corpus[(next as usize) % corpus.len()]);
            next += 1;
        });
    });
    g.bench_function("compact_4k", |b| {
        let mut s = VectorStore::new(DIM, StoreConfig::with_lsh(LshParams::default_blocking()));
        for v in corpus.iter().take(4096) {
            s.insert(v);
        }
        b.iter(|| {
            s.compact();
            black_box(s.len())
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_index
}
criterion_main!(benches);
